package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/casl-sdsu/hart/internal/core"
	"github.com/casl-sdsu/hart/internal/obs"
	"github.com/casl-sdsu/hart/internal/pmem"
	"github.com/casl-sdsu/hart/internal/workload"
)

// Restart experiment: time-to-first-read of a *file-backed* store after
// a real close-and-reopen cycle — the durability path applications
// actually run, as opposed to the recovery experiment's in-memory image
// attach. A store of Records keys (with ~2% deleted, so recovery's
// sweeps have real work) is built through the file backend, closed, and
// reopened per mode; the measured ops are the same three as the recovery
// rows:
//
//	open        — pmem.OpenFileArena + core.Open (mmap/load, superblock,
//	              allocator attach, replay + scan + sweeps, and for eager
//	              modes the whole index rebuild);
//	first-read  — open plus the first Get (for lazy recovery this pays
//	              exactly one shard's first-touch build);
//	full        — time until the whole index is built.
//
// Modes are "eager" at each worker count and "lazy" at the highest; the
// legacy baseline lives in the recovery experiment. Every reopen
// verifies the recovered contents against the loaded key set, so a mode
// that lost data can never report a win.

// RestartResult is one measured cell, shaped like the other experiment
// rows so scripts/benchdiff.sh can gate it: (mode, op, threads) → ns.
type RestartResult struct {
	// Mode is "eager" or "lazy".
	Mode string `json:"mode"`
	// Op is "open", "first-read" or "full".
	Op string `json:"op"`
	// Threads is the recovery worker count.
	Threads int `json:"threads"`
	// NsPerOp is the best-of-reps wall time of the op in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// Millis is the same figure in milliseconds, for reading.
	Millis float64 `json:"millis"`
}

// RestartReport is the BENCH_restart.json document.
type RestartReport struct {
	// Records is the reopened store's record count; ValueSize its payload
	// bytes; FileBytes the backing file's size.
	Records   int   `json:"records"`
	ValueSize int   `json:"value_size"`
	FileBytes int64 `json:"file_bytes"`
	// Mapped reports whether the runs used a real shared mapping (Linux
	// mmap) or the portable heap-buffer fallback.
	Mapped bool `json:"mapped"`
	// NumCPU records the machine's parallelism for the worker-sweep rows.
	NumCPU  int             `json:"num_cpu"`
	Results []RestartResult `json:"results"`
	// LazyFirstReadSpeedup is eager first-read (max workers) ÷ lazy
	// first-read: how much sooner the reopened file answers its first
	// query when the ART builds are deferred.
	LazyFirstReadSpeedup float64 `json:"lazy_first_read_speedup"`
	// Metrics is the last reopened store's observability snapshot; its
	// open/recover.phase events and pm counters contextualise the times.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// buildRestartStore creates and loads a file-backed store at path, then
// closes it cleanly. Returns the surviving keys.
func buildRestartStore(path string, c Config) ([][]byte, error) {
	arena, fresh, err := pmem.OpenFileArena(path, pmem.Config{Size: recoveryArenaSize(c.Records)})
	if err != nil {
		return nil, err
	}
	if !fresh {
		arena.Close()
		return nil, fmt.Errorf("bench: restart store %s already exists", path)
	}
	h, err := core.NewOnArena(arena, core.Options{UnloggedUpdates: true})
	if err != nil {
		arena.Close()
		return nil, err
	}
	// Visible to the CLI's interrupt handler while the load runs, so a
	// SIGINT syncs and closes the image instead of abandoning it dirty.
	defer trackCloser(h.Close)()
	keys := workload.Random(c.Records, c.Seed)
	val := restartValue(c.ValueSize)
	const batch = 4096
	recs := make([]core.Record, 0, batch)
	for i, k := range keys {
		recs = append(recs, core.Record{Key: k, Value: val})
		if len(recs) == batch || i == len(keys)-1 {
			if _, err := h.PutBatch(recs); err != nil {
				h.Close()
				return nil, err
			}
			recs = recs[:0]
		}
	}
	live := keys[:0]
	for i, k := range keys {
		if i%50 == 0 {
			if err := h.Delete(k); err != nil {
				h.Close()
				return nil, err
			}
			continue
		}
		live = append(live, k)
	}
	if err := h.Close(); err != nil {
		return nil, err
	}
	return live, nil
}

// restartValue is the deterministic payload every record carries.
func restartValue(n int) []byte {
	val := make([]byte, n)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	return val
}

// timeRestart reopens the store file under opts and times open, first
// read and full build, verifying the recovered contents before closing.
func timeRestart(path string, keys [][]byte, val []byte, opts core.Options) (tOpen, tFirst, tFull time.Duration, mapped bool, m *obs.Snapshot, err error) {
	start := time.Now()
	arena, fresh, err := pmem.OpenFileArena(path, pmem.Config{})
	if err != nil {
		return 0, 0, 0, false, nil, err
	}
	if fresh {
		arena.Close()
		return 0, 0, 0, false, nil, fmt.Errorf("bench: restart store %s vanished", path)
	}
	h, err := core.Open(arena, opts)
	if err != nil {
		arena.Close()
		return 0, 0, 0, false, nil, err
	}
	defer trackCloser(h.Close)()
	tOpen = time.Since(start)
	probe := keys[len(keys)/2]
	v, ok := h.Get(probe)
	tFirst = time.Since(start)
	if !ok || !bytes.Equal(v, val) {
		h.Close()
		return 0, 0, 0, false, nil, fmt.Errorf("bench: reopened store lost %q", probe)
	}
	h.DrainRecovery()
	tFull = time.Since(start)

	if h.Len() != len(keys) {
		h.Close()
		return 0, 0, 0, false, nil, fmt.Errorf("bench: reopened Len = %d, want %d", h.Len(), len(keys))
	}
	stride := len(keys)/1000 + 1
	for i := 0; i < len(keys); i += stride {
		if v, ok := h.Get(keys[i]); !ok || !bytes.Equal(v, val) {
			h.Close()
			return 0, 0, 0, false, nil, fmt.Errorf("bench: reopened store lost %q", keys[i])
		}
	}
	if fb, ok := pmem.BackendOf(h.Arena()).(*pmem.FileBackend); ok {
		mapped = fb.Mapped()
	}
	snap := h.Metrics()
	return tOpen, tFirst, tFull, mapped, &snap, h.Close()
}

// RunRestart measures the file-backed reopen comparison.
func RunRestart(c Config) (*RestartReport, error) {
	c = c.WithDefaults()
	dir, err := os.MkdirTemp("", "hart-restart-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "store.hart")

	fmt.Fprintf(c.Out, "restart: building %d-record file store...\n", c.Records)
	keys, err := buildRestartStore(path, c)
	if err != nil {
		return nil, err
	}
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	val := restartValue(c.ValueSize)

	workerSweep := c.PathThreads
	if len(workerSweep) == 0 {
		workerSweep = []int{1, 4, 8}
	}
	maxW := workerSweep[len(workerSweep)-1]

	type modeCfg struct {
		mode    string
		workers int
		opts    core.Options
	}
	var modes []modeCfg
	for _, w := range workerSweep {
		modes = append(modes, modeCfg{"eager", w, core.Options{RecoveryWorkers: w}})
	}
	modes = append(modes, modeCfg{"lazy", maxW, core.Options{LazyRecovery: true, RecoveryWorkers: maxW}})

	rep := &RestartReport{
		Records:   len(keys),
		ValueSize: c.ValueSize,
		FileBytes: st.Size(),
		NumCPU:    runtime.NumCPU(),
	}
	const reps = 3
	var eagerFirst, lazyFirst float64
	for _, m := range modes {
		var bOpen, bFirst, bFull time.Duration
		for r := 0; r < reps; r++ {
			fmt.Fprintf(c.Out, "restart: %s workers=%d rep %d/%d...\n", m.mode, m.workers, r+1, reps)
			tOpen, tFirst, tFull, mapped, snap, err := timeRestart(path, keys, val, m.opts)
			if err != nil {
				return nil, err
			}
			rep.Mapped = mapped
			rep.Metrics = snap
			if r == 0 || tOpen < bOpen {
				bOpen = tOpen
			}
			if r == 0 || tFirst < bFirst {
				bFirst = tFirst
			}
			if r == 0 || tFull < bFull {
				bFull = tFull
			}
		}
		for _, cell := range []struct {
			op string
			d  time.Duration
		}{{"open", bOpen}, {"first-read", bFirst}, {"full", bFull}} {
			rep.Results = append(rep.Results, RestartResult{
				Mode:    m.mode,
				Op:      cell.op,
				Threads: m.workers,
				NsPerOp: float64(cell.d.Nanoseconds()),
				Millis:  float64(cell.d.Nanoseconds()) / 1e6,
			})
		}
		if m.mode == "eager" && m.workers == maxW {
			eagerFirst = float64(bFirst.Nanoseconds())
		}
		if m.mode == "lazy" {
			lazyFirst = float64(bFirst.Nanoseconds())
		}
	}
	if eagerFirst > 0 && lazyFirst > 0 {
		rep.LazyFirstReadSpeedup = eagerFirst / lazyFirst
	}
	return rep, nil
}

// WriteJSON writes the report as indented JSON.
func (r *RestartReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// FprintTable renders the report for the terminal.
func (r *RestartReport) FprintTable(w io.Writer) {
	medium := "heap fallback"
	if r.Mapped {
		medium = "mmap"
	}
	fmt.Fprintf(w, "\n== Restart: file-backed reopen to first read (records=%d, value=%dB, file=%.1f MB, %s, NumCPU=%d) ==\n",
		r.Records, r.ValueSize, float64(r.FileBytes)/(1<<20), medium, r.NumCPU)
	fmt.Fprintf(w, "%-8s %-12s %-8s %12s\n", "mode", "op", "workers", "ms")
	for _, res := range r.Results {
		fmt.Fprintf(w, "%-8s %-12s %-8d %12.2f\n", res.Mode, res.Op, res.Threads, res.Millis)
	}
	fmt.Fprintf(w, "lazy first read: %.1fx sooner than eager first read (max workers)\n", r.LazyFirstReadSpeedup)
}
