package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/casl-sdsu/hart/client"
	"github.com/casl-sdsu/hart/internal/core"
	"github.com/casl-sdsu/hart/internal/obs"
	"github.com/casl-sdsu/hart/internal/pmem"
	"github.com/casl-sdsu/hart/internal/server"
	"github.com/casl-sdsu/hart/internal/workload"
)

// Wire experiment (hartsoak): end-to-end ops/s and latency through the
// hartd service layer — real TCP loopback connections, the binary
// protocol, and the server's per-connection pipeline — rather than
// in-process calls. Two client strategies per connection count:
//
//	naive      — one request per round trip, the classic synchronous
//	             client: every op pays a full network RTT;
//	pipelined  — bursts of WirePipelineDepth requests per flush via
//	             client.Pipeline; the server decodes while executing,
//	             coalesces the in-flight Puts into PutBatch (one COW
//	             republication per group), and streams responses back.
//
// Each cell runs on a fresh file-backed store so its latency
// histograms cover exactly that cell. Naive latencies are true
// per-request round trips; pipelined latencies are per-burst time
// amortised over the burst (the steady-state per-op cost a pipelining
// client observes), recorded once per burst.
//
// The headline number is PipelinedSpeedup: pipelined put throughput ÷
// naive put throughput at each connection count. Loopback RTT is small,
// so the measured win is conservative against any real network.

// WirePipelineDepth is the burst size of the pipelined client strategy.
const WirePipelineDepth = 64

// WireResult is one measured cell, shaped like the other experiment
// rows so scripts/benchdiff.sh can gate it: (mode, op, threads) → ns.
type WireResult struct {
	// Mode is "naive" or "pipelined".
	Mode string `json:"mode"`
	// Op is "put" or "get".
	Op string `json:"op"`
	// Threads is the client connection count.
	Threads int `json:"threads"`
	// NsPerOp is wall time per op across all connections.
	NsPerOp float64 `json:"ns_per_op"`
	// MOPS is the corresponding throughput in millions of ops/s.
	MOPS float64 `json:"mops"`
	// P50Ns/P95Ns/P99Ns are client-observed latency percentiles (true
	// RTTs for naive; per-burst amortised for pipelined).
	P50Ns uint64 `json:"p50_ns"`
	P95Ns uint64 `json:"p95_ns"`
	P99Ns uint64 `json:"p99_ns"`
}

// WireReport is the BENCH_wire.json document.
type WireReport struct {
	// OpsPerCell is the operation count each (mode, op, conns) cell ran;
	// ValueSize the record payload bytes.
	OpsPerCell int    `json:"ops_per_cell"`
	ValueSize  int    `json:"value_size"`
	Dist       string `json:"dist"`
	// Conns lists the connection counts measured.
	Conns   []int        `json:"conns"`
	Results []WireResult `json:"results"`
	// PipelinedSpeedup maps each connection count to pipelined ÷ naive
	// put throughput — the wire-level payoff of riding PutBatch.
	PipelinedSpeedup map[string]float64 `json:"pipelined_speedup"`
	// ServerCounters is the last cell's daemon-side view (requests,
	// batches formed, puts coalesced).
	ServerCounters map[string]uint64 `json:"server_counters,omitempty"`
	// Metrics is the last cell's store snapshot; its ops.put_batch vs
	// ops.put counters show the coalescing the speedup comes from.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// WriteJSON writes the report document.
func (r *WireReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// FprintTable renders the report for terminals.
func (r *WireReport) FprintTable(w io.Writer) {
	fmt.Fprintf(w, "\n== hartsoak: wire service layer (%d ops/cell, %s, %dB values) ==\n",
		r.OpsPerCell, r.Dist, r.ValueSize)
	fmt.Fprintf(w, "%-10s %-6s %-6s %12s %10s %10s %10s %10s\n",
		"mode", "op", "conns", "ns/op", "Mops/s", "p50 ns", "p95 ns", "p99 ns")
	for _, res := range r.Results {
		fmt.Fprintf(w, "%-10s %-6s %-6d %12.0f %10.3f %10d %10d %10d\n",
			res.Mode, res.Op, res.Threads, res.NsPerOp, res.MOPS,
			res.P50Ns, res.P95Ns, res.P99Ns)
	}
	for _, nc := range r.Conns {
		if s, ok := r.PipelinedSpeedup[fmt.Sprint(nc)]; ok {
			fmt.Fprintf(w, "pipelined put speedup @%d conns: %.2fx\n", nc, s)
		}
	}
}

// wireCell is one live server over a fresh file-backed store.
type wireCell struct {
	h       *core.HART
	srv     *server.Server
	addr    string
	dir     string
	err     chan error
	once    sync.Once
	cerr    error
	untrack func()
}

// startWireCell builds a fresh store, preloads it, and serves it.
func startWireCell(c Config, preload [][]byte, val []byte) (*wireCell, error) {
	dir, err := os.MkdirTemp("", "hartwire")
	if err != nil {
		return nil, err
	}
	fail := func(e error) (*wireCell, error) {
		os.RemoveAll(dir)
		return nil, e
	}
	arena, _, err := pmem.OpenFileArena(filepath.Join(dir, "wire.hart"),
		pmem.Config{Size: recoveryArenaSize(len(preload) + c.MixedOps)})
	if err != nil {
		return fail(err)
	}
	h, err := core.NewOnArena(arena, core.Options{UnloggedUpdates: true})
	if err != nil {
		arena.Close()
		return fail(err)
	}
	recs := make([]core.Record, 0, 4096)
	for i, k := range preload {
		recs = append(recs, core.Record{Key: k, Value: val})
		if len(recs) == cap(recs) || i == len(preload)-1 {
			if _, err := h.PutBatch(recs); err != nil {
				h.Close()
				return fail(err)
			}
			recs = recs[:0]
		}
	}
	srv := server.New(h, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		h.Close()
		return fail(err)
	}
	cell := &wireCell{h: h, srv: srv, addr: ln.Addr().String(), dir: dir, err: make(chan error, 1)}
	// Registered for the CLI's interrupt handler: a SIGINT mid-soak
	// drains the cell's server and closes its store cleanly.
	cell.untrack = trackCloser(cell.close)
	go func() { cell.err <- srv.Serve(ln) }()
	return cell, nil
}

// close drains the server, closes the store and removes the cell's
// dir. Idempotent: the interrupt handler's sweep may race the
// experiment's own cleanup.
func (w *wireCell) close() error {
	w.once.Do(func() {
		w.untrack()
		w.srv.Shutdown()
		serr := <-w.err
		cerr := w.h.Close()
		os.RemoveAll(w.dir)
		w.cerr = cerr
		if serr != nil {
			w.cerr = serr
		}
	})
	return w.cerr
}

// wirePhase runs one (mode, op) phase across nc connections and returns
// elapsed wall time. Per-connection work is opsPerConn requests; keys
// gives each connection its targets.
func wirePhase(addr, mode, op string, nc, opsPerConn int, keys [][][]byte, val []byte, hist *obs.Histogram) (time.Duration, error) {
	var wg sync.WaitGroup
	errCh := make(chan error, nc)
	start := time.Now()
	for ci := 0; ci < nc; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cl, err := client.Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer cl.Close()
			mine := keys[ci]
			switch mode {
			case "naive":
				for i := 0; i < opsPerConn; i++ {
					t0 := time.Now()
					if op == "put" {
						err = cl.Put(mine[i], val)
					} else {
						_, err = cl.Get(mine[i])
					}
					if err != nil {
						errCh <- fmt.Errorf("wire %s %s conn %d: %w", mode, op, ci, err)
						return
					}
					hist.Record(time.Since(t0).Nanoseconds())
				}
			case "pipelined":
				p := cl.Pipeline()
				for done := 0; done < opsPerConn; {
					burst := min(WirePipelineDepth, opsPerConn-done)
					for i := 0; i < burst; i++ {
						if op == "put" {
							err = p.Put(mine[done+i], val)
						} else {
							err = p.Get(mine[done+i])
						}
						if err != nil {
							errCh <- fmt.Errorf("wire queue conn %d: %w", ci, err)
							return
						}
					}
					t0 := time.Now()
					res, err := p.Exec()
					if err != nil {
						errCh <- fmt.Errorf("wire exec conn %d: %w", ci, err)
						return
					}
					for _, r := range res {
						if r.Err != nil {
							errCh <- fmt.Errorf("wire pipelined %s conn %d: %w", op, ci, r.Err)
							return
						}
					}
					hist.Record(time.Since(t0).Nanoseconds() / int64(burst))
					done += burst
				}
			}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		if err != nil {
			return 0, err
		}
	}
	return elapsed, nil
}

// RunWire runs the wire service-layer soak: naive vs pipelined clients
// at each connection count in c.PathThreads (default 1/4/8).
func RunWire(c Config) (*WireReport, error) {
	c = c.WithDefaults()
	conns := c.PathThreads
	if len(conns) == 0 {
		conns = []int{1, 4, 8}
	}
	ops := c.MixedOps
	val := restartValue(c.ValueSize)

	// Preloaded keys serve the get phases; targets are drawn from them
	// by the configured distribution (uniform or zipf). Draws happen
	// here, single-threaded — Distribution values are not safe for
	// concurrent use — and each connection gets its own target list.
	preload := workload.Random(max(ops, 10000), c.Seed)
	rep := &WireReport{
		OpsPerCell:       ops,
		ValueSize:        c.ValueSize,
		Dist:             c.Dist.Name,
		Conns:            conns,
		PipelinedSpeedup: map[string]float64{},
	}

	putNs := map[string]map[int]float64{"naive": {}, "pipelined": {}}
	for _, nc := range conns {
		opsPerConn := ops / nc
		for _, mode := range []string{"naive", "pipelined"} {
			fmt.Fprintf(c.Out, "wire: %-10s %d conns × %d ops\n", mode, nc, opsPerConn)
			cell, err := startWireCell(c, preload, val)
			if err != nil {
				return nil, err
			}

			// Fresh keys for puts (inserts), distribution-drawn targets
			// for gets.
			rng := rand.New(rand.NewSource(c.Seed + int64(nc)*31 + int64(len(mode))))
			putKeys := make([][][]byte, nc)
			getKeys := make([][][]byte, nc)
			for ci := 0; ci < nc; ci++ {
				putKeys[ci] = make([][]byte, opsPerConn)
				getKeys[ci] = make([][]byte, opsPerConn)
				for i := 0; i < opsPerConn; i++ {
					putKeys[ci][i] = []byte(fmt.Sprintf("w%02d-%08d", ci, i))
					getKeys[ci][i] = preload[c.Dist.Pick(rng, len(preload))]
				}
			}

			for _, op := range []string{"put", "get"} {
				var hist obs.Histogram
				keys := putKeys
				if op == "get" {
					keys = getKeys
				}
				elapsed, err := wirePhase(cell.addr, mode, op, nc, opsPerConn, keys, val, &hist)
				if err != nil {
					cell.close()
					return nil, err
				}
				total := nc * opsPerConn
				nsPerOp := float64(elapsed.Nanoseconds()) / float64(total)
				snap := hist.Snapshot()
				hs := snap.Summary()
				rep.Results = append(rep.Results, WireResult{
					Mode: mode, Op: op, Threads: nc,
					NsPerOp: nsPerOp,
					MOPS:    1e3 / nsPerOp, // ns/op → Mops/s
					P50Ns:   hs.P50Ns, P95Ns: hs.P95Ns, P99Ns: hs.P99Ns,
				})
				if op == "put" {
					putNs[mode][nc] = nsPerOp
				}
			}

			sm := cell.srv.Metrics()
			rep.ServerCounters = map[string]uint64{
				"conns_accepted": sm.ConnsAccepted,
				"requests":       sm.Requests,
				"puts_coalesced": sm.PutsCoalesced,
				"batches_formed": sm.BatchesFormed,
			}
			m := cell.h.Metrics()
			rep.Metrics = &m
			if err := cell.close(); err != nil {
				return nil, err
			}
		}
		if n, p := putNs["naive"][nc], putNs["pipelined"][nc]; n > 0 && p > 0 {
			rep.PipelinedSpeedup[fmt.Sprint(nc)] = n / p
		}
	}
	return rep, nil
}
