package bench

import (
	"fmt"
	"io"
	"sort"
)

// Speedup is one headline comparison (paper Section I: "In the best
// scenarios, HART outperforms WOART, ART+CoW, and FPTree by ...").
type Speedup struct {
	// Baseline is the competitor tree.
	Baseline string
	// Op is the operation.
	Op string
	// Best is the maximum HART advantage over the grid (ratio of
	// baseline latency to HART latency).
	Best float64
	// Worst is the minimum advantage (< 1 means the baseline won there).
	Worst float64
	// BestAt names the workload/latency cell of the Best ratio.
	BestAt string
}

// Summarise derives the Section I headline ratios from Figs. 4-7 rows.
func Summarise(rep Report) []Speedup {
	// cell key: op/workload/latency -> tree -> ns/op
	cells := map[string]map[string]float64{}
	for _, r := range rep {
		if r.NsPerOp <= 0 || r.Op == "mixed" || r.Op == "range" {
			continue
		}
		key := r.Op + "/" + r.Workload + "/" + r.Latency
		if cells[key] == nil {
			cells[key] = map[string]float64{}
		}
		cells[key][r.Tree] = r.NsPerOp
	}
	type agg struct {
		best, worst float64
		bestAt      string
	}
	aggs := map[string]*agg{}
	for key, byTree := range cells {
		hart, ok := byTree["HART"]
		if !ok || hart <= 0 {
			continue
		}
		for tree, ns := range byTree {
			if tree == "HART" {
				continue
			}
			ratio := ns / hart
			var op string
			for i := range key {
				if key[i] == '/' {
					op = key[:i]
					break
				}
			}
			k := tree + "/" + op
			a := aggs[k]
			if a == nil {
				a = &agg{best: ratio, worst: ratio, bestAt: key}
				aggs[k] = a
				continue
			}
			if ratio > a.best {
				a.best, a.bestAt = ratio, key
			}
			if ratio < a.worst {
				a.worst = ratio
			}
		}
	}
	var out []Speedup
	for k, a := range aggs {
		var tree, op string
		for i := range k {
			if k[i] == '/' {
				tree, op = k[:i], k[i+1:]
				break
			}
		}
		out = append(out, Speedup{Baseline: tree, Op: op, Best: a.best, Worst: a.worst, BestAt: a.bestAt})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Baseline != out[j].Baseline {
			return out[i].Baseline < out[j].Baseline
		}
		return opOrder(out[i].Op) < opOrder(out[j].Op)
	})
	return out
}

// opOrder gives the paper's insertion/search/update/deletion order.
func opOrder(op string) int {
	switch op {
	case "insert":
		return 0
	case "search":
		return 1
	case "update":
		return 2
	case "delete":
		return 3
	}
	return 4
}

// FprintSummary renders the headline table.
func FprintSummary(w io.Writer, sps []Speedup) {
	fmt.Fprintf(w, "\n== Section I headline: best-case HART speedups ==\n")
	fmt.Fprintf(w, "%-10s %-8s %8s %8s   %s\n", "baseline", "op", "best", "worst", "best at")
	for _, s := range sps {
		fmt.Fprintf(w, "%-10s %-8s %7.1fx %7.1fx   %s\n", s.Baseline, s.Op, s.Best, s.Worst, s.BestAt)
	}
}
