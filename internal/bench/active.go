package bench

import "sync"

// Signal-safety hook for the CLI: experiments that open file-backed
// stores register a closer here so hartbench's SIGINT/SIGTERM handler
// can drain and close them — flushing the mapping and writing the
// clean-shutdown flag — instead of leaving a dirty image behind when
// the user interrupts a long run. Registered closers must perform the
// durability-safe ordering themselves (server drain before store
// Close) and be idempotent, because the interrupted experiment's own
// cleanup may race the handler's.

var (
	activeMu      sync.Mutex
	activeSeq     int
	activeClosers = map[int]func() error{}
)

// trackCloser registers fn as an open resource and returns its
// unregister function. Unregistering is idempotent.
func trackCloser(fn func() error) (untrack func()) {
	activeMu.Lock()
	activeSeq++
	id := activeSeq
	activeClosers[id] = fn
	activeMu.Unlock()
	return func() {
		activeMu.Lock()
		delete(activeClosers, id)
		activeMu.Unlock()
	}
}

// CloseActive closes every registered resource, newest first (a cell's
// server drains before anything beneath it), and reports the first
// error. The registry is emptied either way; it is meant to run once,
// on the way out of an interrupted process.
func CloseActive() error {
	activeMu.Lock()
	closers := make([]func() error, 0, len(activeClosers))
	ids := make([]int, 0, len(activeClosers))
	for id := range activeClosers {
		ids = append(ids, id)
	}
	// Newest first: higher id = registered later.
	for i := range ids {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] > ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	for _, id := range ids {
		closers = append(closers, activeClosers[id])
	}
	activeClosers = map[int]func() error{}
	activeMu.Unlock()

	var first error
	for _, fn := range closers {
		if err := fn(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
