package bench

import (
	"fmt"
	"time"

	"github.com/casl-sdsu/hart/internal/core"
	"github.com/casl-sdsu/hart/internal/latency"
	"github.com/casl-sdsu/hart/internal/workload"
)

// Ablations probe the design choices the paper fixes by fiat, quantifying
// each knob the way Section III argues for it.

// RunAblationKH sweeps the hash-key length kh (the paper sets kh = 2 and
// argues the overall complexity is k - kh + 1 while collisions stay low).
// kh = 0 is approximated by kh = 1 over a single-byte space; larger kh
// trades ART depth for hash-directory width and DRAM.
func RunAblationKH(c Config) (Report, error) {
	c = c.WithDefaults()
	lat := latency.Config300x300()
	lat.Mode = c.Mode
	keys := workload.Random(c.Records, c.Seed)
	probe := shuffled(keys, c.Seed+13)
	val := workload.Values(1, c.ValueSize, c.Seed+29)[0]
	var report Report
	for _, kh := range []int{1, 2, 3, 4} {
		h, err := core.New(core.Options{
			HashKeyLen: kh,
			ArenaSize:  arenaSize("HART", c.Records+1),
			Latency:    lat,
			CacheModel: lat.ReadDeltaNs() > 0,
		})
		if err != nil {
			return nil, err
		}
		dIns := measureHART(h, c.Mode, func() error {
			for _, k := range keys {
				if err := h.Put(k, val); err != nil {
					return err
				}
			}
			return nil
		}, &err)
		if err != nil {
			return nil, err
		}
		dGet := measureHART(h, c.Mode, func() error {
			for _, k := range probe {
				if _, ok := h.Get(k); !ok {
					return fmt.Errorf("kh=%d lost key %q", kh, k)
				}
			}
			return nil
		}, &err)
		if err != nil {
			return nil, err
		}
		st := h.Stats()
		h.Close()
		n := float64(len(keys))
		report = append(report,
			Row{Figure: "A1", Workload: fmt.Sprintf("kh=%d (%d ARTs)", kh, st.ARTs),
				Latency: lat.Name(), Tree: "HART", Op: "insert", Records: len(keys),
				Threads: 1, NsPerOp: float64(dIns.Nanoseconds()) / n},
			Row{Figure: "A1", Workload: fmt.Sprintf("kh=%d (%d ARTs)", kh, st.ARTs),
				Latency: lat.Name(), Tree: "HART", Op: "search", Records: len(keys),
				Threads: 1, NsPerOp: float64(dGet.Nanoseconds()) / n},
		)
		fmt.Fprintf(c.Out, "ablation kh=%d: %6d ARTs, insert %8.3f us/op, search %8.3f us/op, DRAM %.1f MB\n",
			kh, st.ARTs, float64(dIns.Nanoseconds())/n/1000, float64(dGet.Nanoseconds())/n/1000,
			float64(st.Size.DRAMBytes)/(1<<20))
	}
	return report, nil
}

// measureHART mirrors measure for the concrete HART type.
func measureHART(h *core.HART, mode latency.Mode, fn func() error, errOut *error) time.Duration {
	clock := h.Arena().Clock()
	before := clock.PenaltyNs()
	start := time.Now()
	*errOut = fn()
	d := time.Since(start)
	if mode == latency.ModeAccount {
		d += time.Duration(clock.PenaltyNs() - before)
	}
	return d
}

// RunAblationScan compares the paper's per-key range query against HART's
// native ordered scan across range sizes — quantifying what the hash
// split actually costs for ranges (Section IV.D's "very limited").
func RunAblationScan(c Config) (Report, error) {
	c = c.WithDefaults()
	lat := latency.Config300x300()
	keys := workload.Sequential(c.Records)
	var report Report
	ix, err := NewIndex("HART", lat, c.Mode, c.Records+1)
	if err != nil {
		return nil, err
	}
	if err := preload(c, ix, keys); err != nil {
		return nil, err
	}
	for _, span := range []int{100, 1000, 10000, min(100000, c.Records)} {
		if span > len(keys) {
			break
		}
		start, end := keys[0], keys[span-1]
		var got int
		dPerKey := measure(ix, c.Mode, func() {
			got = 0
			for _, k := range keys[:span] {
				if _, ok := ix.Get(k); ok {
					got++
				}
			}
		})
		if got != span {
			return nil, fmt.Errorf("ablation scan: per-key got %d/%d", got, span)
		}
		dScan := measure(ix, c.Mode, func() {
			got = 0
			ix.Scan(start, append(end, 0), func(k, v []byte) bool { got++; return true })
		})
		if got != span {
			return nil, fmt.Errorf("ablation scan: native got %d/%d", got, span)
		}
		report = append(report,
			Row{Figure: "A2", Workload: fmt.Sprintf("span=%d", span), Latency: lat.Name(),
				Tree: "HART", Op: "per-key", Records: span, Threads: 1,
				NsPerOp: float64(dPerKey.Nanoseconds()) / float64(span)},
			Row{Figure: "A2", Workload: fmt.Sprintf("span=%d", span), Latency: lat.Name(),
				Tree: "HART", Op: "native-scan", Records: span, Threads: 1,
				NsPerOp: float64(dScan.Nanoseconds()) / float64(span)},
		)
		fmt.Fprintf(c.Out, "ablation scan span=%-7d per-key %8.3f us/rec, native %8.3f us/rec (%.1fx)\n",
			span, float64(dPerKey.Nanoseconds())/float64(span)/1000,
			float64(dScan.Nanoseconds())/float64(span)/1000,
			float64(dPerKey.Nanoseconds())/float64(dScan.Nanoseconds()))
	}
	ix.Close()
	return report, nil
}

// RunAblationValueSize compares the two value classes (Section III.A.5):
// 8-byte versus 16-byte out-of-leaf value objects, insert and update.
func RunAblationValueSize(c Config) (Report, error) {
	c = c.WithDefaults()
	lat := latency.Config300x300()
	keys := workload.Random(c.Records, c.Seed)
	var report Report
	for _, vs := range []int{8, 16} {
		ix, err := NewIndex("HART", lat, c.Mode, c.Records+1)
		if err != nil {
			return nil, err
		}
		val := workload.Values(1, vs, c.Seed+31)[0]
		var opErr error
		dIns := measure(ix, c.Mode, func() {
			for _, k := range keys {
				if opErr = ix.Put(k, val); opErr != nil {
					return
				}
			}
		})
		if opErr != nil {
			return nil, opErr
		}
		dUpd := measure(ix, c.Mode, func() {
			for _, k := range keys {
				if opErr = ix.Update(k, val); opErr != nil {
					return
				}
			}
		})
		if opErr != nil {
			return nil, opErr
		}
		si := ix.SizeInfo()
		ix.Close()
		n := float64(len(keys))
		report = append(report,
			Row{Figure: "A3", Workload: fmt.Sprintf("value=%dB", vs), Latency: lat.Name(),
				Tree: "HART", Op: "insert", Records: len(keys), Threads: 1,
				NsPerOp: float64(dIns.Nanoseconds()) / n},
			Row{Figure: "A3", Workload: fmt.Sprintf("value=%dB", vs), Latency: lat.Name(),
				Tree: "HART", Op: "update", Records: len(keys), Threads: 1,
				NsPerOp: float64(dUpd.Nanoseconds()) / n},
		)
		fmt.Fprintf(c.Out, "ablation value=%2dB: insert %8.3f us/op, update %8.3f us/op, PM %.1f MB\n",
			vs, float64(dIns.Nanoseconds())/n/1000, float64(dUpd.Nanoseconds())/n/1000,
			float64(si.PMBytes)/(1<<20))
	}
	return report, nil
}

// RunAblationDistribution extends Fig. 9 beyond the paper: the same mixes
// under a Zipfian request distribution, which concentrates updates on hot
// ARTs and stresses the per-ART write lock.
func RunAblationDistribution(c Config) (Report, error) {
	c = c.WithDefaults()
	lat := latency.Config300x300()
	pre := workload.Random(c.Records, c.Seed)
	fresh := workload.Random(c.Records+c.MixedOps, c.Seed+101)[c.Records:]
	var report Report
	for _, dist := range []workload.Distribution{workload.Uniform(), workload.Zipfian(1.1)} {
		mix := workload.ReadModifiedWrite()
		ops := mix.GenerateDist(c.MixedOps, pre, fresh, c.ValueSize, c.Seed+3, dist)
		ix, err := NewIndex("HART", lat, c.Mode, c.Records+c.MixedOps+1)
		if err != nil {
			return nil, err
		}
		if err := preload(c, ix, pre); err != nil {
			return nil, err
		}
		var opErr error
		d := measure(ix, c.Mode, func() {
			for _, op := range ops {
				switch op.Kind {
				case workload.OpInsert:
					opErr = ix.Put(op.Key, op.Value)
				case workload.OpSearch:
					ix.Get(op.Key)
				case workload.OpUpdate:
					opErr = ix.Update(op.Key, op.Value)
				case workload.OpDelete:
					opErr = ix.Delete(op.Key)
				}
				if opErr != nil {
					return
				}
			}
		})
		if opErr != nil {
			return nil, opErr
		}
		ix.Close()
		report = append(report, Row{
			Figure: "A4", Workload: mix.Name + "/" + dist.Name, Latency: lat.Name(),
			Tree: "HART", Op: "mixed", Records: len(ops), Threads: 1,
			NsPerOp: float64(d.Nanoseconds()) / float64(len(ops)),
		})
		fmt.Fprintf(c.Out, "ablation dist=%-10s %8.3f us/op\n",
			dist.Name, float64(d.Nanoseconds())/float64(len(ops))/1000)
	}
	return report, nil
}

// RunAblationUpdateLog compares HART's two update mechanisms: the full
// Algorithm 3 micro-log (immediately leak-free) against the unlogged
// pointer swing the paper's evaluation measured (Section IV.B; leak
// window bounded by the recovery orphan sweep).
func RunAblationUpdateLog(c Config) (Report, error) {
	c = c.WithDefaults()
	lat := latency.Config300x300()
	lat.Mode = c.Mode
	keys := workload.Random(c.Records, c.Seed)
	probe := shuffled(keys, c.Seed+13)
	val := workload.Values(1, c.ValueSize, c.Seed+29)[0]
	var report Report
	for _, unlogged := range []bool{false, true} {
		h, err := core.New(core.Options{
			ArenaSize:       arenaSize("HART", c.Records+1),
			Latency:         lat,
			CacheModel:      lat.ReadDeltaNs() > 0,
			UnloggedUpdates: unlogged,
		})
		if err != nil {
			return nil, err
		}
		for _, k := range keys {
			if err := h.Put(k, val); err != nil {
				return nil, err
			}
		}
		persistsBefore := h.Arena().Persists()
		d := measureHART(h, c.Mode, func() error {
			for _, k := range probe {
				if err := h.Update(k, val); err != nil {
					return err
				}
			}
			return nil
		}, &err)
		if err != nil {
			return nil, err
		}
		perOp := float64(h.Arena().Persists()-persistsBefore) / float64(len(probe))
		h.Close()
		name := "Algorithm-3 log"
		if unlogged {
			name = "unlogged (paper IV.B)"
		}
		report = append(report, Row{
			Figure: "A5", Workload: name, Latency: lat.Name(), Tree: "HART",
			Op: "update", Records: len(probe), Threads: 1,
			NsPerOp: float64(d.Nanoseconds()) / float64(len(probe)),
		})
		fmt.Fprintf(c.Out, "ablation update-log %-22s %8.3f us/op (%.1f persists/op)\n",
			name, float64(d.Nanoseconds())/float64(len(probe))/1000, perOp)
	}
	return report, nil
}

// RunAblations executes every ablation.
func RunAblations(c Config) (Report, error) {
	var all Report
	for _, fn := range []func(Config) (Report, error){
		RunAblationKH, RunAblationScan, RunAblationValueSize, RunAblationDistribution,
		RunAblationUpdateLog,
	} {
		rep, err := fn(c)
		if err != nil {
			return nil, err
		}
		all = append(all, rep...)
	}
	return all, nil
}
