package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunRestartSmoke runs the file-backed reopen comparison at toy
// scale and checks the report's shape: every mode × op cell present with
// positive times and the JSON round-trippable. The timed reopens inside
// verify the recovered contents, so this doubles as an end-to-end pass
// over the build → Close → OpenFileArena → recover cycle.
func TestRunRestartSmoke(t *testing.T) {
	c := Config{Records: 3000, PathThreads: []int{1, 4}}.WithDefaults()
	c.Out = nil
	rep, err := RunRestart(c)
	if err != nil {
		t.Fatal(err)
	}
	// ~2% of the records are deleted while building the store.
	if rep.Records <= 0 || rep.Records >= 3000 {
		t.Fatalf("live records = %d, want in (0, 3000)", rep.Records)
	}
	if rep.FileBytes <= 0 {
		t.Fatalf("file_bytes = %d", rep.FileBytes)
	}
	// (eager×2 + lazy) modes × (open, first-read, full).
	if len(rep.Results) != 9 {
		t.Fatalf("results = %d, want 9", len(rep.Results))
	}
	cells := map[string]bool{}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 || r.Millis <= 0 {
			t.Fatalf("non-positive cell: %+v", r)
		}
		cells[r.Mode+"/"+r.Op] = true
	}
	for _, mode := range []string{"eager", "lazy"} {
		for _, op := range []string{"open", "first-read", "full"} {
			if !cells[mode+"/"+op] {
				t.Fatalf("missing cell %s/%s", mode, op)
			}
		}
	}
	if rep.LazyFirstReadSpeedup <= 0 {
		t.Fatalf("lazy_first_read_speedup = %v", rep.LazyFirstReadSpeedup)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back RestartReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(rep.Results) {
		t.Fatal("JSON round trip lost results")
	}

	var tbl bytes.Buffer
	rep.FprintTable(&tbl)
	for _, want := range []string{"eager", "lazy", "first-read", "lazy first read"} {
		if !strings.Contains(tbl.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, tbl.String())
		}
	}
}
