package bench

import (
	"fmt"
	"sync"
	"time"

	"github.com/casl-sdsu/hart/internal/core"
	"github.com/casl-sdsu/hart/internal/kv"
	"github.com/casl-sdsu/hart/internal/latency"
	"github.com/casl-sdsu/hart/internal/workload"
)

// figLetter maps workloads to the paper's sub-figure letters.
var figLetter = map[string]string{"Dictionary": "a", "Sequential": "b", "Random": "c"}

// preload fills ix with keys; values come from the config's generator.
func preload(c Config, ix kv.Index, keys [][]byte) error {
	vals := workload.Values(1, c.ValueSize, c.Seed+7)
	v := vals[0]
	for _, k := range keys {
		if err := ix.Put(k, v); err != nil {
			return fmt.Errorf("preload %s: %w", ix.Name(), err)
		}
	}
	return nil
}

// basicOpFig runs one of Figs. 4-7: every workload × latency × tree.
func basicOpFig(c Config, fig, op string) (Report, error) {
	var report Report
	for _, wl := range Workloads {
		keys := keysFor(c, wl)
		phase := shuffled(keys, c.Seed+13)
		newVals := workload.Values(1, c.ValueSize, c.Seed+29)
		for _, lat := range latency.PaperConfigs() {
			for _, tree := range c.Trees {
				ix, err := NewIndex(tree, lat, c.Mode, len(keys)+1)
				if err != nil {
					return nil, err
				}
				var d time.Duration
				n := len(keys)
				switch op {
				case "insert":
					d = measure(ix, c.Mode, func() {
						if err = preload(c, ix, keys); err != nil {
							return
						}
					})
				case "search":
					if err = preload(c, ix, keys); err == nil {
						found := 0
						d = measure(ix, c.Mode, func() {
							for _, k := range phase {
								if _, ok := ix.Get(k); ok {
									found++
								}
							}
						})
						if found != n {
							err = fmt.Errorf("%s search found %d/%d", tree, found, n)
						}
					}
				case "update":
					if err = preload(c, ix, keys); err == nil {
						d = measure(ix, c.Mode, func() {
							for _, k := range phase {
								if err = ix.Update(k, newVals[0]); err != nil {
									return
								}
							}
						})
					}
				case "delete":
					if err = preload(c, ix, keys); err == nil {
						d = measure(ix, c.Mode, func() {
							for _, k := range phase {
								if err = ix.Delete(k); err != nil {
									return
								}
							}
						})
					}
				}
				if err != nil {
					return nil, fmt.Errorf("fig %s %s/%s/%s: %w", fig, wl, lat.Name(), tree, err)
				}
				ix.Close()
				report = append(report, Row{
					Figure: fig + figLetter[wl], Workload: wl, Latency: lat.Name(),
					Tree: tree, Op: op, Records: n, Threads: 1,
					NsPerOp: float64(d.Nanoseconds()) / float64(n),
				})
				fmt.Fprintf(c.Out, "fig%s %-10s %-8s %-8s %-7s %9.3f us/op\n",
					fig, wl, lat.Name(), tree, op, float64(d.Nanoseconds())/float64(n)/1000)
			}
		}
	}
	return report, nil
}

// RunFig4 reproduces Fig. 4 (insertion performance comparisons).
func RunFig4(c Config) (Report, error) { return basicOpFig(c.WithDefaults(), "4", "insert") }

// RunFig5 reproduces Fig. 5 (search performance comparisons).
func RunFig5(c Config) (Report, error) { return basicOpFig(c.WithDefaults(), "5", "search") }

// RunFig6 reproduces Fig. 6 (update performance comparisons).
func RunFig6(c Config) (Report, error) { return basicOpFig(c.WithDefaults(), "6", "update") }

// RunFig7 reproduces Fig. 7 (deletion performance comparisons).
func RunFig7(c Config) (Report, error) { return basicOpFig(c.WithDefaults(), "7", "delete") }

// RunFig8 reproduces Fig. 8: total time of the four basic operations as
// the Random record count grows, under 300/100.
func RunFig8(c Config) (Report, error) {
	c = c.WithDefaults()
	lat := latency.Config300x100()
	var report Report
	sub := map[string]string{"insert": "a", "search": "b", "update": "c", "delete": "d"}
	for _, n := range c.ScaleSweep {
		keys := workload.Random(n, c.Seed)
		phase := shuffled(keys, c.Seed+13)
		val := workload.Values(1, c.ValueSize, c.Seed+29)[0]
		for _, tree := range c.Trees {
			ix, err := NewIndex(tree, lat, c.Mode, n+1)
			if err != nil {
				return nil, err
			}
			dIns := measure(ix, c.Mode, func() { err = preload(c, ix, keys) })
			if err != nil {
				return nil, fmt.Errorf("fig 8 %s n=%d: %w", tree, n, err)
			}
			dSearch := measure(ix, c.Mode, func() {
				for _, k := range phase {
					ix.Get(k)
				}
			})
			dUpdate := measure(ix, c.Mode, func() {
				for _, k := range phase {
					if err = ix.Update(k, val); err != nil {
						return
					}
				}
			})
			dDelete := measure(ix, c.Mode, func() {
				for _, k := range phase {
					if err = ix.Delete(k); err != nil {
						return
					}
				}
			})
			if err != nil {
				return nil, fmt.Errorf("fig 8 %s n=%d: %w", tree, n, err)
			}
			ix.Close()
			for op, d := range map[string]time.Duration{
				"insert": dIns, "search": dSearch, "update": dUpdate, "delete": dDelete,
			} {
				report = append(report, Row{
					Figure: "8" + sub[op], Workload: "Random", Latency: lat.Name(),
					Tree: tree, Op: op, Records: n, Threads: 1, TotalSec: d.Seconds(),
				})
			}
			fmt.Fprintf(c.Out, "fig8 n=%-9d %-8s ins %.3fs search %.3fs upd %.3fs del %.3fs\n",
				n, tree, dIns.Seconds(), dSearch.Seconds(), dUpdate.Seconds(), dDelete.Seconds())
		}
	}
	return report, nil
}

// RunFig9 reproduces Fig. 9: the three YCSB-style mixed workloads.
func RunFig9(c Config) (Report, error) {
	c = c.WithDefaults()
	var report Report
	subs := map[string]string{"Read-Intensive": "a", "Read-Modified-Write": "b", "Write-Intensive": "c"}
	pre := workload.Random(c.Records, c.Seed)
	fresh := workload.Random(c.MixedOps, c.Seed+101)
	// Remove overlap between preloaded and fresh keys.
	seen := make(map[string]bool, len(pre))
	for _, k := range pre {
		seen[string(k)] = true
	}
	uniq := fresh[:0]
	for _, k := range fresh {
		if !seen[string(k)] {
			uniq = append(uniq, k)
		}
	}
	fresh = uniq
	for _, mix := range workload.Mixes() {
		ops := mix.GenerateDist(c.MixedOps, pre, fresh, c.ValueSize, c.Seed+3, c.Dist)
		for _, lat := range latency.PaperConfigs() {
			for _, tree := range c.Trees {
				ix, err := NewIndex(tree, lat, c.Mode, c.Records+c.MixedOps+1)
				if err != nil {
					return nil, err
				}
				if err := preload(c, ix, pre); err != nil {
					return nil, err
				}
				var opErr error
				d := measure(ix, c.Mode, func() {
					for _, op := range ops {
						switch op.Kind {
						case workload.OpInsert:
							opErr = ix.Put(op.Key, op.Value)
						case workload.OpSearch:
							ix.Get(op.Key)
						case workload.OpUpdate:
							opErr = ix.Update(op.Key, op.Value)
						case workload.OpDelete:
							opErr = ix.Delete(op.Key)
						}
						if opErr != nil {
							return
						}
					}
				})
				if opErr != nil {
					return nil, fmt.Errorf("fig 9 %s/%s/%s: %w", mix.Name, lat.Name(), tree, opErr)
				}
				ix.Close()
				report = append(report, Row{
					Figure: "9" + subs[mix.Name], Workload: mix.Name, Latency: lat.Name(),
					Tree: tree, Op: "mixed", Records: len(ops), Threads: 1,
					NsPerOp: float64(d.Nanoseconds()) / float64(len(ops)),
				})
				fmt.Fprintf(c.Out, "fig9 %-20s %-8s %-8s %9.3f us/op\n",
					mix.Name, lat.Name(), tree, float64(d.Nanoseconds())/float64(len(ops))/1000)
			}
		}
	}
	return report, nil
}

// RunFig10a reproduces Fig. 10a: range query of RangeRecords records under
// Sequential. Following the paper, the ART-based trees answer the range
// with one search per key while FPTree walks its linked leaves; a native
// ordered HART scan is reported as an extra series.
func RunFig10a(c Config) (Report, error) {
	c = c.WithDefaults()
	var report Report
	keys := workload.Sequential(c.Records)
	qn := min(c.RangeRecords, len(keys))
	start, end := keys[0], keys[qn-1]
	for _, lat := range latency.PaperConfigs() {
		for _, tree := range c.Trees {
			ix, err := NewIndex(tree, lat, c.Mode, c.Records+1)
			if err != nil {
				return nil, err
			}
			if err := preload(c, ix, keys); err != nil {
				return nil, err
			}
			got := 0
			var d time.Duration
			if tree == "FPTree" {
				d = measure(ix, c.Mode, func() {
					ix.Scan(start, append(end, 0), func(k, v []byte) bool { got++; return true })
				})
			} else {
				d = measure(ix, c.Mode, func() {
					for _, k := range keys[:qn] {
						if _, ok := ix.Get(k); ok {
							got++
						}
					}
				})
			}
			if got != qn {
				return nil, fmt.Errorf("fig 10a %s: ranged %d/%d records", tree, got, qn)
			}
			report = append(report, Row{
				Figure: "10a", Workload: "Sequential", Latency: lat.Name(),
				Tree: tree, Op: "range", Records: qn, Threads: 1,
				NsPerOp: float64(d.Nanoseconds()) / float64(qn),
			})
			fmt.Fprintf(c.Out, "fig10a %-8s %-8s %9.3f us/record\n",
				lat.Name(), tree, float64(d.Nanoseconds())/float64(qn)/1000)
			// Extra series: HART's native ordered scan (design extension).
			if tree == "HART" {
				got = 0
				d = measure(ix, c.Mode, func() {
					ix.Scan(start, append(end, 0), func(k, v []byte) bool { got++; return true })
				})
				if got != qn {
					return nil, fmt.Errorf("fig 10a HART-scan: %d/%d records", got, qn)
				}
				report = append(report, Row{
					Figure: "10a", Workload: "Sequential", Latency: lat.Name(),
					Tree: "HART-scan", Op: "range", Records: qn, Threads: 1,
					NsPerOp: float64(d.Nanoseconds()) / float64(qn),
				})
			}
			ix.Close()
		}
	}
	return report, nil
}

// RunFig10b reproduces Fig. 10b: PM and DRAM consumption under Sequential.
func RunFig10b(c Config) (Report, error) {
	c = c.WithDefaults()
	var report Report
	keys := workload.Sequential(c.Records)
	for _, tree := range c.Trees {
		ix, err := NewIndex(tree, latency.Off(), c.Mode, c.Records+1)
		if err != nil {
			return nil, err
		}
		if err := preload(c, ix, keys); err != nil {
			return nil, err
		}
		si := ix.SizeInfo()
		ix.Close()
		report = append(report, Row{
			Figure: "10b", Workload: "Sequential", Tree: tree, Op: "memory",
			Records: c.Records, Threads: 1, PMBytes: si.PMBytes, DRAMBytes: si.DRAMBytes,
		})
		fmt.Fprintf(c.Out, "fig10b %-8s PM %8.2f MB  DRAM %8.2f MB\n",
			tree, float64(si.PMBytes)/(1<<20), float64(si.DRAMBytes)/(1<<20))
	}
	return report, nil
}

// RunFig10c reproduces Fig. 10c: build time vs recovery time for the two
// hybrid trees (HART and FPTree) under Random at 300/100.
func RunFig10c(c Config) (Report, error) {
	c = c.WithDefaults()
	lat := latency.Config300x100()
	var report Report
	for _, n := range c.ScaleSweep {
		keys := workload.Random(n, c.Seed)
		for _, tree := range []string{"HART", "FPTree"} {
			if !contains(c.Trees, tree) {
				continue
			}
			ix, err := NewIndex(tree, lat, c.Mode, n+1)
			if err != nil {
				return nil, err
			}
			dBuild := measure(ix, c.Mode, func() { err = preload(c, ix, keys) })
			if err != nil {
				return nil, err
			}
			rec, ok := ix.(kv.Recoverable)
			if !ok {
				return nil, fmt.Errorf("fig 10c: %s is not recoverable", tree)
			}
			dRecover := measure(ix, c.Mode, func() { err = rec.Rebuild() })
			if err != nil {
				return nil, err
			}
			if ix.Len() != n {
				return nil, fmt.Errorf("fig 10c %s: %d records after rebuild, want %d", tree, ix.Len(), n)
			}
			ix.Close()
			report = append(report,
				Row{Figure: "10c", Workload: "Random", Latency: lat.Name(), Tree: tree,
					Op: "build", Records: n, Threads: 1, TotalSec: dBuild.Seconds()},
				Row{Figure: "10c", Workload: "Random", Latency: lat.Name(), Tree: tree,
					Op: "recovery", Records: n, Threads: 1, TotalSec: dRecover.Seconds()},
			)
			fmt.Fprintf(c.Out, "fig10c n=%-9d %-8s build %8.4fs recovery %8.4fs (%.1fx faster)\n",
				n, tree, dBuild.Seconds(), dRecover.Seconds(), dBuild.Seconds()/dRecover.Seconds())
		}
	}
	return report, nil
}

// RunFig10d reproduces Fig. 10d: HART MIOPS for the four basic operations
// as the thread count grows, under Random at 300/100.
func RunFig10d(c Config) (Report, error) {
	c = c.WithDefaults()
	lat := latency.Config300x100()
	lat.Mode = c.Mode
	var report Report
	keys := workload.Random(c.Records, c.Seed)
	val := workload.Values(1, c.ValueSize, c.Seed+29)[0]
	for _, threads := range c.Threads {
		for _, op := range []string{"insert", "search", "update", "delete"} {
			h, err := core.New(core.Options{ArenaSize: arenaSize("HART", c.Records+1), Latency: lat,
				UnloggedUpdates: true})
			if err != nil {
				return nil, err
			}
			if op != "insert" {
				if err := preloadHART(h, keys, val); err != nil {
					return nil, err
				}
			}
			shards := shardKeys(keys, threads)
			var wg sync.WaitGroup
			errs := make([]error, threads)
			start := time.Now()
			for w := 0; w < threads; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for _, k := range shards[w] {
						switch op {
						case "insert":
							errs[w] = h.Put(k, val)
						case "search":
							h.Get(k)
						case "update":
							errs[w] = h.Update(k, val)
						case "delete":
							errs[w] = h.Delete(k)
						}
						if errs[w] != nil {
							return
						}
					}
				}(w)
			}
			wg.Wait()
			d := time.Since(start)
			for _, e := range errs {
				if e != nil {
					return nil, fmt.Errorf("fig 10d %s x%d: %w", op, threads, e)
				}
			}
			h.Close()
			miops := float64(len(keys)) / d.Seconds() / 1e6
			report = append(report, Row{
				Figure: "10d", Workload: "Random", Latency: lat.Name(), Tree: "HART",
				Op: op, Records: len(keys), Threads: threads, MIOPS: miops,
			})
			fmt.Fprintf(c.Out, "fig10d threads=%-3d %-7s %8.3f MIOPS\n", threads, op, miops)
		}
	}
	return report, nil
}

// preloadHART mirrors preload for the concrete HART type.
func preloadHART(h *core.HART, keys [][]byte, val []byte) error {
	for _, k := range keys {
		if err := h.Put(k, val); err != nil {
			return err
		}
	}
	return nil
}

// shardKeys splits keys round-robin across n workers.
func shardKeys(keys [][]byte, n int) [][][]byte {
	out := make([][][]byte, n)
	for i, k := range keys {
		out[i%n] = append(out[i%n], k)
	}
	return out
}

// contains reports whether list holds s.
func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// RunAll executes every figure and concatenates the reports.
func RunAll(c Config) (Report, error) {
	c = c.WithDefaults()
	var all Report
	runs := []struct {
		name string
		fn   func(Config) (Report, error)
	}{
		{"fig4", RunFig4}, {"fig5", RunFig5}, {"fig6", RunFig6}, {"fig7", RunFig7},
		{"fig8", RunFig8}, {"fig9", RunFig9}, {"fig10a", RunFig10a},
		{"fig10b", RunFig10b}, {"fig10c", RunFig10c}, {"fig10d", RunFig10d},
	}
	for _, r := range runs {
		rep, err := r.fn(c)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r.name, err)
		}
		all = append(all, rep...)
	}
	return all, nil
}
