package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/casl-sdsu/hart/internal/core"
	"github.com/casl-sdsu/hart/internal/obs"
	"github.com/casl-sdsu/hart/internal/pmem"
	"github.com/casl-sdsu/hart/internal/workload"
)

// Recovery experiment (Fig. 10c's recovery side, extended): how fast a
// HART image becomes usable again after a restart. Three questions, one
// per measured op:
//
//	open        — wall time of Open itself (replay + scan + sweeps, and
//	              for eager modes the whole index rebuild);
//	first-read  — open plus the first Get (for lazy recovery this pays
//	              exactly one shard's first-touch build);
//	full        — time until the whole index is built: open for eager
//	              modes, open + DrainRecovery for lazy.
//
// Modes: "legacy" is the pre-pipeline serial path (Options.LegacyRecovery),
// "eager" the pipelined path at each worker count, "lazy" the deferred
// per-shard rebuild at the highest worker count. Latency injection is off:
// the experiment isolates the index-rebuild cost, which dominates recovery
// (the PM reads are identical across modes). NumCPU is recorded because
// worker scaling needs cores; on a single-core host the eager speedup is
// algorithmic only (single key read, no per-leaf locking, batch ART
// builds, bulk directory construction).

// RecoveryResult is one measured cell, shaped like the read/write-path
// rows so scripts/benchdiff.sh can gate it: (mode, op, threads) → ns.
type RecoveryResult struct {
	// Mode is "legacy", "eager" or "lazy".
	Mode string `json:"mode"`
	// Op is "open", "first-read" or "full".
	Op string `json:"op"`
	// Threads is the recovery worker count.
	Threads int `json:"threads"`
	// NsPerOp is the best-of-reps wall time of the op in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// Millis is the same figure in milliseconds, for reading.
	Millis float64 `json:"millis"`
}

// RecoveryReport is the BENCH_recovery.json document.
type RecoveryReport struct {
	// Records is the recovered record count; ValueSize its payload bytes.
	Records   int `json:"records"`
	ValueSize int `json:"value_size"`
	// NumCPU records the machine's parallelism so the worker-scaling rows
	// can be read in context.
	NumCPU  int              `json:"num_cpu"`
	Results []RecoveryResult `json:"results"`
	// SpeedupFull maps "w<workers>" to legacy-serial full ÷ eager full.
	SpeedupFull map[string]float64 `json:"speedup_full"`
	// LazyFirstReadSpeedup is eager full (max workers) ÷ lazy first-read:
	// how much sooner the store answers its first query.
	LazyFirstReadSpeedup float64 `json:"lazy_first_read_speedup"`
	// Metrics is the last recovered store's observability snapshot; its
	// recover.phase events break the wall times down by phase.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// recoveryArenaSize sizes the arena tightly enough that a million-record
// store fits comfortably without a half-gigabyte image: leaves cost ~41 B
// and 8-byte values ~9 B after chunk amortisation.
func recoveryArenaSize(n int) int64 {
	return int64(n)*128 + (32 << 20)
}

// buildRecoveryImage creates a store, loads it and returns its durable
// image plus the loaded keys (deletes punch ~2% dead slots so recovery's
// sweeps have real work).
func buildRecoveryImage(c Config) ([]byte, [][]byte, error) {
	h, err := core.New(core.Options{
		ArenaSize:       recoveryArenaSize(c.Records),
		UnloggedUpdates: true,
		Tracking:        true, // DurableImage needs the tracked arena
	})
	if err != nil {
		return nil, nil, err
	}
	defer h.Close()
	keys := workload.Random(c.Records, c.Seed)
	val := make([]byte, c.ValueSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	const batch = 4096
	recs := make([]core.Record, 0, batch)
	for i, k := range keys {
		recs = append(recs, core.Record{Key: k, Value: val})
		if len(recs) == batch || i == len(keys)-1 {
			if _, err := h.PutBatch(recs); err != nil {
				return nil, nil, err
			}
			recs = recs[:0]
		}
	}
	live := keys[:0]
	for i, k := range keys {
		if i%50 == 0 {
			if err := h.Delete(k); err != nil {
				return nil, nil, err
			}
			continue
		}
		live = append(live, k)
	}
	img, err := h.Arena().DurableImage()
	if err != nil {
		return nil, nil, err
	}
	return img, live, nil
}

// timeRecovery opens one private copy of the image under opts and times
// open, first read and (via drain) full build. It also spot-checks the
// recovered contents so a mode that diverged can never report a win.
func timeRecovery(img []byte, keys [][]byte, val []byte, opts core.Options) (tOpen, tFirst, tFull time.Duration, m *obs.Snapshot, err error) {
	arena, err := pmem.Attach(append([]byte(nil), img...), pmem.Config{Size: int64(len(img))})
	if err != nil {
		return 0, 0, 0, nil, err
	}
	start := time.Now()
	h, err := core.Open(arena, opts)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	tOpen = time.Since(start)
	probe := keys[len(keys)/2]
	v, ok := h.Get(probe)
	tFirst = time.Since(start)
	if !ok || !bytes.Equal(v, val) {
		return 0, 0, 0, nil, fmt.Errorf("bench: recovered store lost %q", probe)
	}
	h.DrainRecovery()
	tFull = time.Since(start)

	if h.Len() != len(keys) {
		return 0, 0, 0, nil, fmt.Errorf("bench: recovered Len = %d, want %d", h.Len(), len(keys))
	}
	stride := len(keys)/1000 + 1
	for i := 0; i < len(keys); i += stride {
		if v, ok := h.Get(keys[i]); !ok || !bytes.Equal(v, val) {
			return 0, 0, 0, nil, fmt.Errorf("bench: recovered store lost %q", keys[i])
		}
	}
	snap := h.Metrics()
	h.Close()
	return tOpen, tFirst, tFull, &snap, nil
}

// RunRecovery measures the recovery comparison and returns the report.
func RunRecovery(c Config) (*RecoveryReport, error) {
	c = c.WithDefaults()
	fmt.Fprintf(c.Out, "recovery: building %d-record image...\n", c.Records)
	img, keys, err := buildRecoveryImage(c)
	if err != nil {
		return nil, err
	}
	val := make([]byte, c.ValueSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}

	workerSweep := c.PathThreads
	if len(workerSweep) == 0 {
		workerSweep = []int{1, 4, 8}
	}
	maxW := workerSweep[len(workerSweep)-1]

	type modeCfg struct {
		mode    string
		workers int
		opts    core.Options
	}
	modes := []modeCfg{{"legacy", 1, core.Options{LegacyRecovery: true, RecoveryWorkers: 1}}}
	for _, w := range workerSweep {
		modes = append(modes, modeCfg{"eager", w, core.Options{RecoveryWorkers: w}})
	}
	modes = append(modes, modeCfg{"lazy", maxW, core.Options{LazyRecovery: true, RecoveryWorkers: maxW}})

	rep := &RecoveryReport{
		Records:     len(keys),
		ValueSize:   c.ValueSize,
		NumCPU:      runtime.NumCPU(),
		SpeedupFull: map[string]float64{},
	}
	const reps = 3
	var legacyFull, lazyFirst float64
	eagerFull := map[int]float64{}
	for _, m := range modes {
		var bOpen, bFirst, bFull time.Duration
		for r := 0; r < reps; r++ {
			fmt.Fprintf(c.Out, "recovery: %s workers=%d rep %d/%d...\n", m.mode, m.workers, r+1, reps)
			tOpen, tFirst, tFull, snap, err := timeRecovery(img, keys, val, m.opts)
			if err != nil {
				return nil, err
			}
			rep.Metrics = snap
			if r == 0 || tOpen < bOpen {
				bOpen = tOpen
			}
			if r == 0 || tFirst < bFirst {
				bFirst = tFirst
			}
			if r == 0 || tFull < bFull {
				bFull = tFull
			}
		}
		for _, cell := range []struct {
			op string
			d  time.Duration
		}{{"open", bOpen}, {"first-read", bFirst}, {"full", bFull}} {
			rep.Results = append(rep.Results, RecoveryResult{
				Mode:    m.mode,
				Op:      cell.op,
				Threads: m.workers,
				NsPerOp: float64(cell.d.Nanoseconds()),
				Millis:  float64(cell.d.Nanoseconds()) / 1e6,
			})
		}
		switch m.mode {
		case "legacy":
			legacyFull = float64(bFull.Nanoseconds())
		case "eager":
			eagerFull[m.workers] = float64(bFull.Nanoseconds())
			rep.SpeedupFull[fmt.Sprintf("w%d", m.workers)] = legacyFull / float64(bFull.Nanoseconds())
		case "lazy":
			lazyFirst = float64(bFirst.Nanoseconds())
		}
	}
	if full, ok := eagerFull[maxW]; ok && lazyFirst > 0 {
		rep.LazyFirstReadSpeedup = full / lazyFirst
	}
	return rep, nil
}

// WriteJSON writes the report as indented JSON.
func (r *RecoveryReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// FprintTable renders the report for the terminal.
func (r *RecoveryReport) FprintTable(w io.Writer) {
	fmt.Fprintf(w, "\n== Recovery: legacy vs pipelined vs lazy (records=%d, value=%dB, NumCPU=%d) ==\n",
		r.Records, r.ValueSize, r.NumCPU)
	fmt.Fprintf(w, "%-8s %-12s %-8s %12s\n", "mode", "op", "workers", "ms")
	for _, res := range r.Results {
		fmt.Fprintf(w, "%-8s %-12s %-8d %12.2f\n", res.Mode, res.Op, res.Threads, res.Millis)
	}
	for _, k := range sortedKeys(r.SpeedupFull) {
		fmt.Fprintf(w, "speedup full %s: %.2fx vs legacy serial\n", k, r.SpeedupFull[k])
	}
	fmt.Fprintf(w, "lazy first read: %.1fx sooner than eager full build\n", r.LazyFirstReadSpeedup)
}
