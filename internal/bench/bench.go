// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (Section IV). Each RunFig*
// function reproduces one figure's rows; cmd/hartbench drives them and
// prints the same series the paper plots.
//
// Latency methodology: by default the harness runs the trees in
// latency.ModeSpin, so PM write penalties (per persistent()) and PM read
// penalties (per simulated-LLC-miss load) are injected into wall-clock
// time — multi-threaded results then need no correction. In
// latency.ModeAccount the harness instead adds the accounted penalty to
// the measured wall time, which is exactly the paper's offline-adding
// method; both modes agree for single-threaded runs.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/casl-sdsu/hart/internal/artcow"
	"github.com/casl-sdsu/hart/internal/core"
	"github.com/casl-sdsu/hart/internal/fptree"
	"github.com/casl-sdsu/hart/internal/kv"
	"github.com/casl-sdsu/hart/internal/latency"
	"github.com/casl-sdsu/hart/internal/woart"
	"github.com/casl-sdsu/hart/internal/workload"
)

// Tree names in the paper's presentation order.
var TreeNames = []string{"HART", "WOART", "ART+CoW", "FPTree"}

// Config parameterises a harness run.
type Config struct {
	// Records is the Sequential/Random record count (paper: 1 M-100 M;
	// scaled default 100,000).
	Records int
	// DictRecords is the Dictionary size (paper: 466,544).
	DictRecords int
	// RangeRecords is the number of records range queries touch
	// (paper: 100,000).
	RangeRecords int
	// MixedOps is the operation count of the Fig. 9 mixed workloads.
	MixedOps int
	// ValueSize is the record payload (8 or 16 bytes).
	ValueSize int
	// Seed feeds the workload generators.
	Seed int64
	// Mode selects latency injection (ModeSpin or ModeAccount).
	Mode latency.Mode
	// Trees restricts which trees run (nil = all four).
	Trees []string
	// ScaleSweep lists the Fig. 8 / Fig. 10c record counts.
	ScaleSweep []int
	// Threads lists the Fig. 10d thread counts.
	Threads []int
	// PathThreads lists the thread counts of the read-path and write-path
	// comparisons (nil = the checked-in default, 1/4/8).
	PathThreads []int
	// Dist is the request distribution the mixed workloads draw
	// search/update/delete targets from (zero value = Uniform, the
	// paper's setting; cmd/hartbench's -dist zipf selects
	// workload.ZipfTheta).
	Dist workload.Distribution
	// Out receives progress and tables.
	Out io.Writer
}

// WithDefaults fills unset fields with the scaled-down defaults.
func (c Config) WithDefaults() Config {
	if c.Records == 0 {
		c.Records = 100000
	}
	if c.DictRecords == 0 {
		c.DictRecords = 100000
	}
	if c.RangeRecords == 0 {
		c.RangeRecords = min(c.Records, 100000)
	}
	if c.MixedOps == 0 {
		c.MixedOps = c.Records
	}
	if c.ValueSize == 0 {
		c.ValueSize = 8
	}
	if c.Seed == 0 {
		c.Seed = 20190520 // IPDPS'19 week
	}
	if c.Mode == latency.ModeOff {
		c.Mode = latency.ModeSpin
	}
	if len(c.Trees) == 0 {
		c.Trees = TreeNames
	}
	if len(c.ScaleSweep) == 0 {
		c.ScaleSweep = []int{c.Records / 10, c.Records / 2, c.Records}
	}
	if len(c.Threads) == 0 {
		c.Threads = []int{1, 2, 4, 8, 16}
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	if c.Dist.Name == "" {
		c.Dist = workload.Uniform()
	}
	return c
}

// arenaSize estimates a safely generous arena for n records of the tree.
func arenaSize(tree string, n int) int64 {
	per := int64(512)
	switch tree {
	case "WOART", "ART+CoW":
		per = 1024
	}
	size := int64(n)*per + (32 << 20)
	return size
}

// NewIndex builds one tree under the given latency configuration.
func NewIndex(tree string, lat latency.Config, mode latency.Mode, records int) (kv.Index, error) {
	lat.Mode = mode
	size := arenaSize(tree, records)
	// The CPU cache model only matters when reads carry a PM penalty.
	cacheModel := lat.ReadDeltaNs() > 0
	switch tree {
	case "HART":
		// UnloggedUpdates selects the update mechanism the paper measured
		// (Section IV.B); RunAblationUpdateLog compares it against the full
		// Algorithm 3 log.
		return core.New(core.Options{ArenaSize: size, Latency: lat, CacheModel: cacheModel,
			UnloggedUpdates: true})
	case "WOART":
		return woart.New(woart.Options{ArenaSize: size, Latency: lat, CacheModel: cacheModel})
	case "ART+CoW":
		return artcow.New(artcow.Options{ArenaSize: size, Latency: lat, CacheModel: cacheModel})
	case "FPTree":
		return fptree.New(fptree.Options{ArenaSize: size, Latency: lat, CacheModel: cacheModel})
	default:
		return nil, fmt.Errorf("bench: unknown tree %q", tree)
	}
}

// Row is one measured data point.
type Row struct {
	// Figure is the paper figure id ("4a", "10d", ...).
	Figure string
	// Workload labels the key set or mix.
	Workload string
	// Latency is the PM configuration label ("300/100", ...).
	Latency string
	// Tree is the index name.
	Tree string
	// Op is the measured operation.
	Op string
	// Records is the record or operation count.
	Records int
	// Threads is the worker count (1 unless Fig. 10d).
	Threads int
	// NsPerOp is the average latency per operation.
	NsPerOp float64
	// TotalSec is the full-run duration (Fig. 8, Fig. 10c).
	TotalSec float64
	// MIOPS is millions of operations per second (Fig. 10d).
	MIOPS float64
	// PMBytes / DRAMBytes report footprints (Fig. 10b).
	PMBytes, DRAMBytes int64
}

// measure runs fn and returns its duration including latency penalties.
func measure(ix kv.Index, mode latency.Mode, fn func()) time.Duration {
	clock := ix.Arena().Clock()
	before := clock.PenaltyNs()
	start := time.Now()
	fn()
	d := time.Since(start)
	if mode == latency.ModeAccount {
		d += time.Duration(clock.PenaltyNs() - before)
	}
	return d
}

// keysFor returns the named workload's key set.
func keysFor(c Config, name string) [][]byte {
	switch name {
	case "Dictionary":
		return workload.Dictionary(c.DictRecords)
	case "Sequential":
		return workload.Sequential(c.Records)
	case "Random":
		return workload.Random(c.Records, c.Seed)
	default:
		panic("bench: unknown workload " + name)
	}
}

// Workloads lists the three key-set workloads in paper order.
var Workloads = []string{"Dictionary", "Sequential", "Random"}

// shuffled returns a deterministic permutation of keys (search/update/
// delete phases use a different order than the insertion order).
func shuffled(keys [][]byte, seed int64) [][]byte {
	out := make([][]byte, len(keys))
	copy(out, keys)
	rng := newRng(seed)
	for i := len(out) - 1; i > 0; i-- {
		j := int(rng.next() % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// rng is a tiny splitmix64 so the harness does not perturb the workload
// package's generators.
type rng struct{ s uint64 }

func newRng(seed int64) *rng { return &rng{uint64(seed)*2654435761 + 1} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Report is a set of rows with table rendering.
type Report []Row

// FprintTable renders the report grouped by figure.
func (r Report) FprintTable(w io.Writer) {
	byFig := map[string]Report{}
	var figs []string
	for _, row := range r {
		if _, ok := byFig[row.Figure]; !ok {
			figs = append(figs, row.Figure)
		}
		byFig[row.Figure] = append(byFig[row.Figure], row)
	}
	sort.Strings(figs)
	for _, fig := range figs {
		fmt.Fprintf(w, "\n== Figure %s ==\n", fig)
		rows := byFig[fig]
		switch {
		case rows[0].MIOPS > 0:
			fmt.Fprintf(w, "%-12s %-10s %-8s %-8s %10s\n", "workload", "op", "latency", "threads", "MIOPS")
			for _, row := range rows {
				fmt.Fprintf(w, "%-12s %-10s %-8s %-8d %10.3f\n",
					row.Workload, row.Op, row.Latency, row.Threads, row.MIOPS)
			}
		case rows[0].PMBytes > 0 || rows[0].DRAMBytes > 0:
			fmt.Fprintf(w, "%-12s %-10s %12s %12s\n", "workload", "tree", "PM MB", "DRAM MB")
			for _, row := range rows {
				fmt.Fprintf(w, "%-12s %-10s %12.2f %12.2f\n",
					row.Workload, row.Tree, float64(row.PMBytes)/(1<<20), float64(row.DRAMBytes)/(1<<20))
			}
		case rows[0].TotalSec > 0:
			fmt.Fprintf(w, "%-12s %-10s %-10s %-8s %10s %12s\n", "workload", "tree", "op", "latency", "records", "total s")
			for _, row := range rows {
				fmt.Fprintf(w, "%-12s %-10s %-10s %-8s %10d %12.4f\n",
					row.Workload, row.Tree, row.Op, row.Latency, row.Records, row.TotalSec)
			}
		default:
			fmt.Fprintf(w, "%-12s %-10s %-10s %-8s %12s\n", "workload", "tree", "op", "latency", "us/op")
			for _, row := range rows {
				fmt.Fprintf(w, "%-12s %-10s %-10s %-8s %12.3f\n",
					row.Workload, row.Tree, row.Op, row.Latency, row.NsPerOp/1000)
			}
		}
	}
}
