package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRunWireSmoke runs the wire soak at toy scale and checks the
// report's invariants: a result row per (mode, op, conns) cell with
// positive throughput and latency, percentile ordering, a speedup entry
// per connection count, coalescing visible in the counters, and a JSON
// document that round-trips.
func TestRunWireSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("network soak")
	}
	c := Config{
		Records:     2000,
		MixedOps:    2000,
		PathThreads: []int{1, 2},
	}
	rep, err := RunWire(c)
	if err != nil {
		t.Fatalf("RunWire: %v", err)
	}
	if want := len(c.PathThreads) * 2 * 2; len(rep.Results) != want {
		t.Fatalf("results = %d rows, want %d", len(rep.Results), want)
	}
	for _, res := range rep.Results {
		if res.NsPerOp <= 0 || res.MOPS <= 0 {
			t.Fatalf("%s/%s@%d: non-positive measurement %+v", res.Mode, res.Op, res.Threads, res)
		}
		if res.P50Ns == 0 || res.P50Ns > res.P95Ns || res.P95Ns > res.P99Ns {
			t.Fatalf("%s/%s@%d: percentile ordering broken: %+v", res.Mode, res.Op, res.Threads, res)
		}
	}
	for _, nc := range c.PathThreads {
		key := map[int]string{1: "1", 2: "2"}[nc]
		if rep.PipelinedSpeedup[key] <= 0 {
			t.Fatalf("missing speedup for %d conns: %v", nc, rep.PipelinedSpeedup)
		}
	}
	// The pipelined cells must actually have coalesced: the last cell is
	// a pipelined one, so its server counters carry batches.
	if rep.ServerCounters["batches_formed"] == 0 {
		t.Fatalf("pipelined cell formed no batches: %v", rep.ServerCounters)
	}
	if rep.Metrics == nil || rep.Metrics.Counters["ops.put_batch_records"] == 0 {
		t.Fatal("store metrics missing coalesced put evidence")
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back WireReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(back.Results) != len(rep.Results) {
		t.Fatalf("round trip lost rows: %d != %d", len(back.Results), len(rep.Results))
	}
}
