package bench

import (
	"errors"
	"testing"
)

// TestActiveCloserRegistry pins the interrupt-path contract: closers
// run newest-first, untracked closers don't run, the registry empties
// after CloseActive, and the first error wins.
func TestActiveCloserRegistry(t *testing.T) {
	var order []string
	mk := func(name string, err error) func() error {
		return func() error {
			order = append(order, name)
			return err
		}
	}
	u1 := trackCloser(mk("oldest", nil))
	u2 := trackCloser(mk("middle", errors.New("middle failed")))
	u3 := trackCloser(mk("newest", errors.New("newest failed")))
	_ = u1
	_ = u3

	// An untracked closer must not run.
	uGone := trackCloser(mk("gone", nil))
	uGone()
	uGone() // idempotent

	if err := CloseActive(); err == nil || err.Error() != "newest failed" {
		t.Fatalf("CloseActive error = %v, want first (newest) error", err)
	}
	want := []string{"newest", "middle", "oldest"}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ran %v, want %v", order, want)
		}
	}

	// Registry is now empty: a second pass is a no-op...
	order = order[:0]
	if err := CloseActive(); err != nil {
		t.Fatalf("second CloseActive: %v", err)
	}
	if len(order) != 0 {
		t.Fatalf("second CloseActive ran %v", order)
	}
	// ...and untracking after the sweep is harmless.
	u2()
}
