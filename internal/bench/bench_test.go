package bench

import (
	"bytes"
	"strings"
	"testing"

	"github.com/casl-sdsu/hart/internal/latency"
)

// tinyConfig keeps harness smoke tests fast: latency accounting instead of
// spinning, small record counts.
func tinyConfig() Config {
	return Config{
		Records:      2000,
		DictRecords:  2000,
		RangeRecords: 1000,
		MixedOps:     2000,
		Mode:         latency.ModeAccount,
		ScaleSweep:   []int{500, 1000},
		Threads:      []int{1, 2},
	}.WithDefaults()
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Records == 0 || c.ValueSize != 8 || len(c.Trees) != 4 || c.Mode != latency.ModeSpin {
		t.Fatalf("defaults wrong: %+v", c)
	}
}

func TestNewIndexAllTrees(t *testing.T) {
	for _, tree := range TreeNames {
		ix, err := NewIndex(tree, latency.Config300x300(), latency.ModeAccount, 1000)
		if err != nil {
			t.Fatalf("%s: %v", tree, err)
		}
		if ix.Name() != tree {
			t.Fatalf("NewIndex(%q).Name() = %q", tree, ix.Name())
		}
		if err := ix.Put([]byte("smoke"), []byte("v")); err != nil {
			t.Fatal(err)
		}
		ix.Close()
	}
	if _, err := NewIndex("nope", latency.Off(), latency.ModeOff, 10); err == nil {
		t.Fatal("unknown tree accepted")
	}
}

func TestFig4SmokeAndPenaltyOrdering(t *testing.T) {
	c := tinyConfig()
	c.Trees = []string{"HART", "WOART"}
	rep, err := RunFig4(c)
	if err != nil {
		t.Fatal(err)
	}
	// 3 workloads × 3 latencies × 2 trees.
	if len(rep) != 18 {
		t.Fatalf("fig4 rows = %d, want 18", len(rep))
	}
	// Sanity: per-op latency grows with the PM write latency for the
	// pure-PM tree (more persists => more penalty).
	var woart300, woart600 float64
	for _, r := range rep {
		if r.Tree == "WOART" && r.Workload == "Random" {
			switch r.Latency {
			case "300/300":
				woart300 = r.NsPerOp
			case "600/300":
				woart600 = r.NsPerOp
			}
		}
	}
	if woart600 <= woart300 {
		t.Fatalf("WOART insert not slower at 600ns writes: %0.f vs %0.f ns/op", woart600, woart300)
	}
}

func TestFig5Through7Smoke(t *testing.T) {
	c := tinyConfig()
	c.Trees = []string{"HART", "FPTree"}
	for _, fn := range []func(Config) (Report, error){RunFig5, RunFig6, RunFig7} {
		rep, err := fn(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep) != 18 {
			t.Fatalf("rows = %d, want 18", len(rep))
		}
		for _, r := range rep {
			if r.NsPerOp <= 0 {
				t.Fatalf("non-positive ns/op: %+v", r)
			}
		}
	}
}

func TestFig8Smoke(t *testing.T) {
	c := tinyConfig()
	c.Trees = []string{"HART"}
	rep, err := RunFig8(c)
	if err != nil {
		t.Fatal(err)
	}
	// 2 sweep points × 1 tree × 4 ops.
	if len(rep) != 8 {
		t.Fatalf("fig8 rows = %d, want 8", len(rep))
	}
	for _, r := range rep {
		if r.TotalSec <= 0 {
			t.Fatalf("non-positive total: %+v", r)
		}
	}
}

func TestFig9Smoke(t *testing.T) {
	c := tinyConfig()
	c.Trees = []string{"HART", "ART+CoW"}
	rep, err := RunFig9(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep) != 3*3*2 {
		t.Fatalf("fig9 rows = %d", len(rep))
	}
}

func TestFig10aSmoke(t *testing.T) {
	c := tinyConfig()
	rep, err := RunFig10a(c)
	if err != nil {
		t.Fatal(err)
	}
	// 3 latencies × (4 trees + HART-scan extra).
	if len(rep) != 15 {
		t.Fatalf("fig10a rows = %d, want 15", len(rep))
	}
}

func TestFig10bSmoke(t *testing.T) {
	c := tinyConfig()
	rep, err := RunFig10b(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep) != 4 {
		t.Fatalf("fig10b rows = %d", len(rep))
	}
	var hartDRAM, woartDRAM int64 = -1, -1
	for _, r := range rep {
		if r.PMBytes <= 0 {
			t.Fatalf("PM bytes missing: %+v", r)
		}
		switch r.Tree {
		case "HART":
			hartDRAM = r.DRAMBytes
		case "WOART":
			woartDRAM = r.DRAMBytes
		}
	}
	// Paper Fig. 10b: WOART/ART+CoW use no DRAM; HART uses plenty.
	if woartDRAM != 0 {
		t.Fatalf("WOART DRAM = %d, want 0", woartDRAM)
	}
	if hartDRAM <= 0 {
		t.Fatalf("HART DRAM = %d, want > 0", hartDRAM)
	}
}

func TestFig10cSmoke(t *testing.T) {
	c := tinyConfig()
	rep, err := RunFig10c(c)
	if err != nil {
		t.Fatal(err)
	}
	// 2 sweep points × 2 trees × {build, recovery}.
	if len(rep) != 8 {
		t.Fatalf("fig10c rows = %d", len(rep))
	}
	// Recovery must beat build for both hybrid trees (paper: "their
	// recovery times are shorter than their build times").
	times := map[string]float64{}
	for _, r := range rep {
		if r.Records == 1000 {
			times[r.Tree+"/"+r.Op] = r.TotalSec
		}
	}
	for _, tree := range []string{"HART", "FPTree"} {
		if times[tree+"/recovery"] >= times[tree+"/build"] {
			t.Fatalf("%s recovery %.4fs not faster than build %.4fs",
				tree, times[tree+"/recovery"], times[tree+"/build"])
		}
	}
}

func TestFig10dSmoke(t *testing.T) {
	c := tinyConfig()
	rep, err := RunFig10d(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep) != 2*4 {
		t.Fatalf("fig10d rows = %d", len(rep))
	}
	for _, r := range rep {
		if r.MIOPS <= 0 {
			t.Fatalf("non-positive MIOPS: %+v", r)
		}
	}
}

func TestReportTableRendering(t *testing.T) {
	rep := Report{
		{Figure: "4a", Workload: "Dictionary", Latency: "300/100", Tree: "HART", Op: "insert", NsPerOp: 1234},
		{Figure: "10b", Workload: "Sequential", Tree: "HART", PMBytes: 1 << 20, DRAMBytes: 2 << 20},
		{Figure: "10d", Workload: "Random", Latency: "300/100", Tree: "HART", Op: "search", Threads: 8, MIOPS: 12.5},
		{Figure: "8a", Workload: "Random", Latency: "300/100", Tree: "HART", Op: "insert", Records: 100, TotalSec: 1.5},
	}
	var buf bytes.Buffer
	rep.FprintTable(&buf)
	out := buf.String()
	for _, want := range []string{"Figure 4a", "Figure 10b", "Figure 10d", "Figure 8a", "MIOPS", "PM MB", "us/op", "total s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestShuffledDeterministic(t *testing.T) {
	keys := [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d"), []byte("e")}
	a := shuffled(keys, 1)
	b := shuffled(keys, 1)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatal("shuffle not deterministic")
		}
	}
	diff := false
	for i, k := range shuffled(keys, 2) {
		if !bytes.Equal(k, a[i]) {
			diff = true
		}
	}
	if !diff {
		t.Log("warning: two seeds produced identical shuffles (possible but unlikely)")
	}
}

func TestAblationsSmoke(t *testing.T) {
	c := tinyConfig()
	rep, err := RunAblations(c)
	if err != nil {
		t.Fatal(err)
	}
	figs := map[string]int{}
	for _, r := range rep {
		figs[r.Figure]++
		if r.NsPerOp <= 0 {
			t.Fatalf("non-positive ns/op: %+v", r)
		}
	}
	if figs["A1"] != 8 { // 4 kh values × {insert, search}
		t.Fatalf("A1 rows = %d", figs["A1"])
	}
	if figs["A2"] == 0 || figs["A3"] != 4 || figs["A4"] != 2 || figs["A5"] != 2 {
		t.Fatalf("ablation coverage: %v", figs)
	}
}

func TestSummariseHeadline(t *testing.T) {
	rep := Report{
		{Workload: "Random", Latency: "300/300", Tree: "HART", Op: "insert", NsPerOp: 100},
		{Workload: "Random", Latency: "300/300", Tree: "WOART", Op: "insert", NsPerOp: 410},
		{Workload: "Dictionary", Latency: "300/100", Tree: "HART", Op: "insert", NsPerOp: 200},
		{Workload: "Dictionary", Latency: "300/100", Tree: "WOART", Op: "insert", NsPerOp: 220},
		{Workload: "Random", Latency: "300/300", Tree: "HART", Op: "search", NsPerOp: 100},
		{Workload: "Random", Latency: "300/300", Tree: "WOART", Op: "search", NsPerOp: 90},
	}
	sps := Summarise(rep)
	if len(sps) != 2 {
		t.Fatalf("speedups = %d, want 2", len(sps))
	}
	if sps[0].Op != "insert" || sps[0].Best != 4.1 || sps[0].Worst != 1.1 {
		t.Fatalf("insert summary = %+v", sps[0])
	}
	if sps[1].Op != "search" || sps[1].Best != 0.9 {
		t.Fatalf("search summary = %+v", sps[1])
	}
}

func TestChartsRender(t *testing.T) {
	rep := Report{
		{Figure: "4a", Workload: "Dictionary", Latency: "300/100", Tree: "HART", Op: "insert", NsPerOp: 1000},
		{Figure: "4a", Workload: "Dictionary", Latency: "300/100", Tree: "WOART", Op: "insert", NsPerOp: 4000},
		{Figure: "10b", Workload: "Sequential", Tree: "HART", Op: "memory", PMBytes: 10 << 20, DRAMBytes: 20 << 20},
		{Figure: "10c", Workload: "Random", Tree: "HART", Op: "build", Records: 100, TotalSec: 2},
		{Figure: "10d", Workload: "Random", Tree: "HART", Op: "search", Threads: 4, MIOPS: 3.5},
	}
	var buf bytes.Buffer
	rep.FprintCharts(&buf)
	out := buf.String()
	for _, want := range []string{"Figure 4a", "####", "us/op", "MB", "MIOPS", "*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// The best (lowest) us/op bar is starred; HART's bar must be shorter.
	hartLine, woartLine := "", ""
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "HART") && strings.Contains(l, "us/op") {
			hartLine = l
		}
		if strings.Contains(l, "WOART") && strings.Contains(l, "us/op") {
			woartLine = l
		}
	}
	if strings.Count(hartLine, "#") >= strings.Count(woartLine, "#") {
		t.Fatalf("bar lengths wrong:\n%s\n%s", hartLine, woartLine)
	}
	if !strings.Contains(hartLine, "*") {
		t.Fatalf("winner not starred: %s", hartLine)
	}
}
