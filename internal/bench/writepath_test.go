package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/casl-sdsu/hart/internal/core"
)

// TestRunWritePathSmoke runs the full write-path comparison at toy scale
// and checks the report's shape: every mode × op × thread cell present,
// the speedup and amortisation maps filled, and the JSON round-trippable.
func TestRunWritePathSmoke(t *testing.T) {
	c := Config{Records: 2048, PathThreads: []int{2}}.WithDefaults()
	c.Out = nil
	rep, err := RunWritePath(c)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 2048 || rep.BatchSize != WritePathBatchSize {
		t.Fatalf("header wrong: %+v", rep)
	}
	// 2 modes × 1 thread count × (Put, Mixed50/50, PutSeq, PutBatch64).
	if len(rep.Results) != 8 {
		t.Fatalf("results = %d, want 8", len(rep.Results))
	}
	cells := map[string]bool{}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 || r.MOPS <= 0 {
			t.Fatalf("non-positive cell: %+v", r)
		}
		cells[r.Mode+"/"+r.Op] = true
	}
	for _, mode := range []string{"legacy", "striped"} {
		for _, op := range []string{"Put", "Mixed50/50", "PutSeq", "PutBatch64"} {
			if !cells[mode+"/"+op] {
				t.Fatalf("missing cell %s/%s", mode, op)
			}
		}
	}
	if rep.SpeedupPut["t2"] <= 0 {
		t.Fatalf("speedup_put missing: %v", rep.SpeedupPut)
	}
	if rep.BatchAmortisation["legacy"] <= 0 || rep.BatchAmortisation["striped"] <= 0 {
		t.Fatalf("batch_amortisation missing: %v", rep.BatchAmortisation)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back WritePathReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(rep.Results) {
		t.Fatal("JSON round trip lost results")
	}

	var tbl bytes.Buffer
	rep.FprintTable(&tbl)
	for _, want := range []string{"striped", "legacy", "PutBatch64", "speedup t2", "batch amortisation"} {
		if !strings.Contains(tbl.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, tbl.String())
		}
	}
}

// TestWritePathZeroAlloc pins the steady-state claims the checked-in
// BENCH_writepath.json makes: on a preloaded index, GetInto with a
// caller buffer is allocation-free and a logged-update Put stays
// allocation-free too (its value slot comes from the PM allocator and its
// micro-log from the preallocated pool).
func TestWritePathZeroAlloc(t *testing.T) {
	c := Config{Records: 2048}.WithDefaults()
	c.Records = 2048
	h, keys, err := writePathIndex(c, false)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	buf := make([]byte, 0, core.MaxValueLen)
	val := []byte("deadbeef")
	rng := newRng(7)
	mask := len(keys) - 1 // 2048 is a power of two

	if n := testing.AllocsPerRun(200, func() {
		if _, ok := h.GetInto(keys[int(rng.next())&mask], buf); !ok {
			t.Fatal("miss")
		}
	}); n != 0 {
		t.Fatalf("GetInto allocates %.2f/op, want 0", n)
	}
	// Put occasionally grows allocator-side chunk metadata; average far
	// below one allocation per op is the regression bound (the seed path
	// cost 8 allocs on every call).
	if n := testing.AllocsPerRun(200, func() {
		if err := h.Put(keys[int(rng.next())&mask], val); err != nil {
			t.Fatal(err)
		}
	}); n > 0.05 {
		t.Fatalf("Put allocates %.2f/op, want ~0", n)
	}
}
