package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunSkewSmoke runs the skew comparison at toy scale and checks the
// report's shape: every mode × thread cell present, the elastic cells
// actually split, and the fraction maps filled.
func TestRunSkewSmoke(t *testing.T) {
	c := Config{Records: 6000, PathThreads: []int{2}}.WithDefaults()
	c.Out = nil
	rep, err := RunSkew(c)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 6000 || rep.Theta != SkewTheta || rep.RankUniverse != SkewRankUniverse {
		t.Fatalf("header wrong: %+v", rep)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(rep.Results))
	}
	cells := map[string]SkewResult{}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 || r.MOPS <= 0 || r.Op != "Put" || r.Threads != 2 {
			t.Fatalf("bad cell: %+v", r)
		}
		cells[r.Mode] = r
	}
	for _, mode := range []string{"uniform", "fixed", "elastic"} {
		if _, ok := cells[mode]; !ok {
			t.Fatalf("missing cell %s", mode)
		}
	}
	// The zipfian hot shard must cross the scaled threshold and split.
	if e := cells["elastic"]; e.Splits == 0 || e.MaxDepth <= 2 {
		t.Fatalf("elastic run did not split: %+v", e)
	}
	if rep.RecoveredFrac["t2"] <= 0 || rep.FixedFrac["t2"] <= 0 {
		t.Fatalf("fraction maps missing: %v %v", rep.RecoveredFrac, rep.FixedFrac)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back SkewReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(rep.Results) || back.RecoveredFrac["t2"] != rep.RecoveredFrac["t2"] {
		t.Fatal("JSON round trip lost data")
	}

	var tbl bytes.Buffer
	rep.FprintTable(&tbl)
	for _, want := range []string{"elastic", "fixed", "uniform", "elastic/uniform t2"} {
		if !strings.Contains(tbl.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, tbl.String())
		}
	}
}
