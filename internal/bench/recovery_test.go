package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunRecoverySmoke runs the full recovery comparison at toy scale and
// checks the report's shape: every mode × op cell present with positive
// times, the speedup fields filled, and the JSON round-trippable. The
// timed opens inside also spot-check recovered contents, so this doubles
// as an end-to-end correctness pass over legacy, eager and lazy recovery.
func TestRunRecoverySmoke(t *testing.T) {
	c := Config{Records: 3000, PathThreads: []int{1, 4}}.WithDefaults()
	c.Out = nil
	rep, err := RunRecovery(c)
	if err != nil {
		t.Fatal(err)
	}
	// ~2% of the records are deleted while building the image.
	if rep.Records <= 0 || rep.Records >= 3000 {
		t.Fatalf("live records = %d, want in (0, 3000)", rep.Records)
	}
	if rep.NumCPU <= 0 {
		t.Fatalf("NumCPU = %d", rep.NumCPU)
	}
	// (legacy + eager×2 + lazy) modes × (open, first-read, full).
	if len(rep.Results) != 12 {
		t.Fatalf("results = %d, want 12", len(rep.Results))
	}
	cells := map[string]bool{}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 || r.Millis <= 0 {
			t.Fatalf("non-positive cell: %+v", r)
		}
		cells[r.Mode+"/"+r.Op] = true
	}
	for _, mode := range []string{"legacy", "eager", "lazy"} {
		for _, op := range []string{"open", "first-read", "full"} {
			if !cells[mode+"/"+op] {
				t.Fatalf("missing cell %s/%s", mode, op)
			}
		}
	}
	if rep.SpeedupFull["w1"] <= 0 || rep.SpeedupFull["w4"] <= 0 {
		t.Fatalf("speedup_full missing: %v", rep.SpeedupFull)
	}
	if rep.LazyFirstReadSpeedup <= 0 {
		t.Fatalf("lazy_first_read_speedup = %v", rep.LazyFirstReadSpeedup)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back RecoveryReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(rep.Results) {
		t.Fatal("JSON round trip lost results")
	}

	var tbl bytes.Buffer
	rep.FprintTable(&tbl)
	for _, want := range []string{"legacy", "eager", "lazy", "first-read", "speedup full w4", "lazy first read"} {
		if !strings.Contains(tbl.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, tbl.String())
		}
	}
}
