package bench

import (
	"sync/atomic"

	"github.com/casl-sdsu/hart/internal/obs"
)

// The live-snapshot hook behind hartbench's -metrics-addr flag: each
// experiment publishes its store's Metrics closure as it comes up, so an
// external Prometheus scrape (or a curl of /metrics) during a run sees
// the store currently under measurement. Snapshot assembly reads only
// published atomics and immutable directory tables, so a scrape racing a
// store's Close is safe — it just reports the final totals.

var liveSnap atomic.Pointer[func() obs.Snapshot]

// setLive installs fn as the process's live metrics source.
func setLive(fn func() obs.Snapshot) { liveSnap.Store(&fn) }

// LiveSnapshot returns the most recently published store's snapshot, or
// a zero Snapshot before any experiment store exists.
func LiveSnapshot() obs.Snapshot {
	if p := liveSnap.Load(); p != nil {
		return (*p)()
	}
	return obs.Snapshot{}
}
