package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"github.com/casl-sdsu/hart/internal/core"
	"github.com/casl-sdsu/hart/internal/obs"
	"github.com/casl-sdsu/hart/internal/workload"
)

// Skew experiment: multi-writer insert throughput when the key stream is
// zipfian over a small prefix universe, so a handful of hash-directory
// shards absorb most of the writes. The fixed kh=2 directory serialises
// every writer on the hot shard's lock and keeps growing one big COW ART
// there; the elastic directory (DESIGN.md §13) notices the heat and
// splits the hot shard into one-byte-deeper children, which in this
// workload are per-writer (the byte after the rank prefix is the writer
// tag), restoring the disjoint-shard parallelism of the uniform case.
//
// Latency injection is off for the same reason as the read/write-path
// experiments: the subject is directory contention, which identical PM
// penalties would only dilute.

// SkewRankUniverse is the number of distinct 2-byte rank prefixes the
// skewed key stream draws from. 1024 ranks under theta=0.99 send ~13% of
// all inserts to the single hottest prefix.
const SkewRankUniverse = 1024

// SkewTheta is the YCSB-standard zipfian skew parameter.
const SkewTheta = 0.99

// SkewReps is how many times each cell runs; the fastest repetition is
// kept (the usual wall-clock discipline on shared machines).
const SkewReps = 3

// SkewResult is one measured cell of the skew comparison.
type SkewResult struct {
	// Mode is "uniform" (uniform ranks, fixed directory — the ceiling),
	// "fixed" (zipfian ranks, fixed kh=2 directory — the baseline) or
	// "elastic" (zipfian ranks, hot-shard splitting on).
	Mode string `json:"mode"`
	// Op is always "Put": a bulk insert of Records fresh keys.
	Op string `json:"op"`
	// Threads is the writer-goroutine / GOMAXPROCS count.
	Threads int `json:"threads"`
	// NsPerOp is the mean wall-clock cost per inserted record.
	NsPerOp float64 `json:"ns_per_op"`
	// MOPS is millions of inserts per second (all writers combined).
	MOPS float64 `json:"mops"`
	// Splits and MaxDepth report the directory geometry after the run
	// (elastic rows only): persisted split prefixes and the longest
	// directory entry.
	Splits   int `json:"splits,omitempty"`
	MaxDepth int `json:"max_depth,omitempty"`
}

// SkewReport is the BENCH_skew.json document, shaped like
// BENCH_writepath.json (a results array keyed by mode/op/threads) so
// benchdiff.sh reads it unchanged.
type SkewReport struct {
	// Records is the number of keys each cell inserts.
	Records   int `json:"records"`
	ValueSize int `json:"value_size"`
	// Theta and RankUniverse parameterise the zipfian key stream.
	Theta        float64 `json:"theta"`
	RankUniverse int     `json:"rank_universe"`
	// SplitOps is the heat threshold the elastic cells ran with.
	SplitOps int `json:"split_ops"`
	NumCPU   int `json:"num_cpu"`
	Results  []SkewResult `json:"results"`
	// RecoveredFrac maps "t<threads>" to elastic MOPS ÷ uniform MOPS:
	// the fraction of the unskewed throughput the elastic directory
	// recovers under zipfian skew. The acceptance bar is ≥ 0.70 at every
	// multi-writer thread count.
	RecoveredFrac map[string]float64 `json:"recovered_frac"`
	// FixedFrac maps "t<threads>" to fixed MOPS ÷ uniform MOPS: how much
	// the skew costs when the directory cannot adapt, kept as the
	// measured baseline.
	FixedFrac map[string]float64 `json:"fixed_frac"`
	// Metrics is the final elastic cell's observability snapshot (split
	// events and dir.splits put the recovered fractions in context).
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// skewKeys generates each writer's insert stream: the first two bytes
// encode a rank drawn from dist over [0, SkewRankUniverse), the third
// byte tags the writer, and a fixed-width counter makes the key unique.
// Under zipfian ranks the hot shard's children split by the writer tag,
// so a split is exactly a writer-parallelism restoration.
func skewKeys(n, threads int, dist workload.Distribution, seed int64) [][][]byte {
	const alpha = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
	per := (n + threads - 1) / threads
	out := make([][][]byte, threads)
	for w := 0; w < threads; w++ {
		cnt := min(per, n-w*per)
		if cnt <= 0 {
			break
		}
		rng := rand.New(rand.NewSource(seed + int64(w)*7919))
		keys := make([][]byte, cnt)
		for i := 0; i < cnt; i++ {
			r := dist.Pick(rng, SkewRankUniverse)
			k := make([]byte, 7)
			k[0] = alpha[r/len(alpha)]
			k[1] = alpha[r%len(alpha)]
			k[2] = alpha[w%len(alpha)]
			v := i
			for j := 6; j >= 3; j-- {
				k[j] = alpha[v%len(alpha)]
				v /= len(alpha)
			}
			keys[i] = k
		}
		out[w] = keys
	}
	return out
}

// skewCell times one mode at one thread count: a fresh store, the
// pre-generated per-writer key streams, manual wall-clock over the
// partitioned writers (the generator cost stays outside the timed
// region).
func skewCell(c Config, mode string, parts [][][]byte, splitOps, threads int) (SkewResult, *obs.Snapshot, error) {
	h, err := core.New(core.Options{
		ArenaSize:        arenaSize("HART", c.Records),
		ElasticDirectory: mode == "elastic",
		SplitOps:         splitOps,
	})
	if err != nil {
		return SkewResult{}, nil, err
	}
	defer h.Close()
	val := make([]byte, c.ValueSize)
	for i := range val {
		val[i] = byte('A' + i%26)
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	runtime.GC()
	prev := runtime.GOMAXPROCS(threads)
	defer runtime.GOMAXPROCS(prev)

	var wg sync.WaitGroup
	errs := make(chan error, threads)
	start := time.Now()
	for _, part := range parts {
		if len(part) == 0 {
			continue
		}
		wg.Add(1)
		go func(part [][]byte) {
			defer wg.Done()
			for _, k := range part {
				if err := h.Put(k, val); err != nil {
					errs <- err
					return
				}
			}
		}(part)
	}
	wg.Wait()
	d := time.Since(start)
	close(errs)
	for err := range errs {
		return SkewResult{}, nil, err
	}
	if got := h.Len(); got != total {
		return SkewResult{}, nil, fmt.Errorf("skew %s left %d records, want %d", mode, got, total)
	}
	ns := float64(d.Nanoseconds()) / float64(total)
	res := SkewResult{Mode: mode, Op: "Put", Threads: threads, NsPerOp: ns, MOPS: 1e3 / ns}
	m := h.Metrics()
	if mode == "elastic" {
		st := h.Stats()
		res.Splits = st.Dir.Splits
		res.MaxDepth = st.Dir.MaxDepth
	}
	return res, &m, nil
}

// RunSkew measures the skew comparison and returns the report.
func RunSkew(c Config) (*SkewReport, error) {
	c = c.WithDefaults()
	threads := c.PathThreads
	if len(threads) == 0 {
		threads = []int{1, 4, 8}
	}
	// Scale the split threshold with the run so toy-sized smoke runs
	// still split: the hot shard sees ~13% of all inserts, so Records/64
	// leaves it roughly eight splits' worth of heat.
	splitOps := max(128, c.Records/64)

	rep := &SkewReport{
		Records:       c.Records,
		ValueSize:     c.ValueSize,
		Theta:         SkewTheta,
		RankUniverse:  SkewRankUniverse,
		SplitOps:      splitOps,
		NumCPU:        runtime.NumCPU(),
		RecoveredFrac: map[string]float64{},
		FixedFrac:     map[string]float64{},
	}
	uniformMOPS := map[int]float64{}
	for _, mode := range []string{"uniform", "fixed", "elastic"} {
		dist := workload.ZipfTheta(SkewTheta)
		if mode == "uniform" {
			dist = workload.Uniform()
		}
		for _, t := range threads {
			fmt.Fprintf(c.Out, "skew: %s insert threads=%d...\n", mode, t)
			parts := skewKeys(c.Records, t, dist, c.Seed+int64(t))
			var r SkewResult
			var rm *obs.Snapshot
			for rep := 0; rep < SkewReps; rep++ {
				rr, m, err := skewCell(c, mode, parts, splitOps, t)
				if err != nil {
					return nil, err
				}
				if rep == 0 || rr.NsPerOp < r.NsPerOp {
					r, rm = rr, m
				}
			}
			rep.Results = append(rep.Results, r)
			key := fmt.Sprintf("t%d", t)
			switch mode {
			case "uniform":
				uniformMOPS[t] = r.MOPS
			case "fixed":
				if base := uniformMOPS[t]; base > 0 {
					rep.FixedFrac[key] = r.MOPS / base
				}
			case "elastic":
				if base := uniformMOPS[t]; base > 0 {
					rep.RecoveredFrac[key] = r.MOPS / base
				}
				rep.Metrics = rm
			}
		}
	}
	return rep, nil
}

// WriteJSON writes the report as indented JSON.
func (r *SkewReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// FprintTable renders the report for the terminal.
func (r *SkewReport) FprintTable(w io.Writer) {
	fmt.Fprintf(w, "\n== Skew: zipfian(theta=%.2f, ranks=%d) inserts, fixed vs elastic directory (records=%d, split_ops=%d, NumCPU=%d) ==\n",
		r.Theta, r.RankUniverse, r.Records, r.SplitOps, r.NumCPU)
	fmt.Fprintf(w, "%-10s %-6s %-8s %12s %10s %8s %9s\n", "mode", "op", "threads", "ns/op", "Mops/s", "splits", "max depth")
	for _, res := range r.Results {
		depth := ""
		if res.MaxDepth > 0 {
			depth = fmt.Sprintf("%9d", res.MaxDepth)
		}
		splits := ""
		if res.Mode == "elastic" {
			splits = fmt.Sprintf("%8d", res.Splits)
		}
		fmt.Fprintf(w, "%-10s %-6s %-8d %12.1f %10.3f %8s %9s\n",
			res.Mode, res.Op, res.Threads, res.NsPerOp, res.MOPS, splits, depth)
	}
	for _, t := range sortedKeys(r.FixedFrac) {
		fmt.Fprintf(w, "fixed/uniform %s: %.2f\n", t, r.FixedFrac[t])
	}
	for _, t := range sortedKeys(r.RecoveredFrac) {
		fmt.Fprintf(w, "elastic/uniform %s: %.2f (bar: ≥ 0.70 multi-writer)\n", t, r.RecoveredFrac[t])
	}
}
