// Crash recovery: demonstrates HART's durability contract on simulated
// persistent memory — what survives a power failure, how recovery rebuilds
// the DRAM half (Algorithm 7), and how EPallocator's bitmaps prevent
// persistent memory leaks after a crash in the middle of an insertion.
//
//	go run ./examples/crashrecovery
package main

import (
	"fmt"
	"log"

	hart "github.com/casl-sdsu/hart"
)

func main() {
	// CrashSimulation maintains a durable view alongside the volatile
	// one, exactly like real PM behind a CPU cache.
	db, err := hart.New(hart.Options{CrashSimulation: true, ArenaSize: 16 << 20})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("phase 1: load 10,000 records")
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("user%05d", i)
		v := fmt.Sprintf("v%08d", i)
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			log.Fatal(err)
		}
	}

	// Power fails now. CrashImage returns exactly the bytes the PM medium
	// holds: everything persisted survives; unflushed cache lines do not.
	img, err := db.CrashImage()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 2: power failure (image: %.1f MB)\n", float64(len(img))/(1<<20))

	// Recovery: attach the image, complete any interrupted update logs,
	// and rebuild the hash directory plus all ART internal nodes by
	// walking the leaf chunks (Algorithm 7). Note that recovery is much
	// cheaper than the original build: no PM allocation, no persists.
	db2, err := hart.Restore(img, hart.Options{CrashSimulation: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 3: recovered %d records into %d ARTs\n", db2.Len(), db2.NumARTs())

	// Verify every record came back.
	for i := 0; i < 10000; i += 997 {
		k := fmt.Sprintf("user%05d", i)
		v, ok := db2.Get([]byte(k))
		if !ok || string(v) != fmt.Sprintf("v%08d", i) {
			log.Fatalf("record %s lost or damaged: (%q, %v)", k, v, ok)
		}
	}
	if err := db2.Check(); err != nil {
		log.Fatalf("post-recovery fsck: %v", err)
	}
	fmt.Println("phase 4: fsck clean — no lost records, no persistent leaks")

	// Leak prevention in action: crash between an insertion's value
	// commit (Algorithm 1 line 14) and its leaf commit (line 18) leaves a
	// committed value referenced only by an uncommitted leaf slot. The
	// arena injects a crash at that persist boundary.
	fmt.Println("phase 5: inject a crash mid-insertion")
	db2.Arena().FailAfterPersists(4) // value write, p_value, value bit, key... crash before keyLen persist
	func() {
		defer func() { recover() }() // the injected crash panics
		_ = db2.Put([]byte("torn-insert"), []byte("half"))
	}()
	db2.Arena().DisarmCrash()

	img2, err := db2.CrashImage()
	if err != nil {
		log.Fatal(err)
	}
	db3, err := hart.Restore(img2, hart.Options{CrashSimulation: true})
	if err != nil {
		log.Fatal(err)
	}
	if _, ok := db3.Get([]byte("torn-insert")); ok {
		log.Fatal("torn insert became visible!")
	}
	fmt.Printf("phase 6: torn insert invisible after recovery (%d records)\n", db3.Len())

	// The orphaned value object is reclaimable: the next allocations
	// reuse the leaf slot and EPMalloc's repair path (Algorithm 2 lines
	// 12-16) frees the value. The fsck accepts reclaimable orphans and
	// rejects true leaks, so a clean check after refilling proves the
	// space came back.
	for i := 0; i < 100; i++ {
		if err := db3.Put([]byte(fmt.Sprintf("refill%04d", i)), []byte("x")); err != nil {
			log.Fatal(err)
		}
	}
	if err := db3.Check(); err != nil {
		log.Fatalf("leak check failed: %v", err)
	}
	fmt.Println("phase 7: slot reused, orphan value reclaimed — no leak. done.")
}
