// YCSB-style mixed workloads: runs the paper's three cloud-database
// operation mixes (Fig. 9) against HART under each PM latency
// configuration and prints per-op latency and throughput.
//
//	go run ./examples/ycsb [-records 50000] [-ops 50000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	hart "github.com/casl-sdsu/hart"
	"github.com/casl-sdsu/hart/internal/workload"
)

func main() {
	records := flag.Int("records", 50000, "preloaded record count")
	nops := flag.Int("ops", 50000, "operations per mix")
	flag.Parse()

	pre := workload.Random(*records, 1)
	fresh := workload.Random(*records+*nops, 2)[*records:]
	// Drop the (rare) fresh keys that collide with preloaded ones, so
	// every generated insert really is an insert.
	seen := make(map[string]bool, len(pre))
	for _, k := range pre {
		seen[string(k)] = true
	}
	uniq := fresh[:0]
	for _, k := range fresh {
		if !seen[string(k)] {
			uniq = append(uniq, k)
		}
	}
	fresh = uniq

	lats := []struct {
		name            string
		writeNs, readNs int64
	}{{"300/100", 300, 100}, {"300/300", 300, 300}, {"600/300", 600, 300}}

	for _, mix := range workload.Mixes() {
		ops := mix.Generate(*nops, pre, fresh, 8, 3)
		fmt.Printf("\n%s (%d%% insert / %d%% search / %d%% update / %d%% delete), uniform distribution\n",
			mix.Name, mix.InsertPct, mix.SearchPct, mix.UpdatePct, mix.DeletePct)
		for _, lat := range lats {
			db, err := hart.New(hart.Options{
				ArenaSize: int64(*records+*nops)*256 + (32 << 20),
				PMWriteNs: lat.writeNs,
				PMReadNs:  lat.readNs,
			})
			if err != nil {
				log.Fatal(err)
			}
			for _, k := range pre {
				if err := db.Put(k, []byte("00000000")); err != nil {
					log.Fatal(err)
				}
			}
			start := time.Now()
			for _, op := range ops {
				switch op.Kind {
				case workload.OpInsert:
					err = db.Put(op.Key, op.Value)
				case workload.OpSearch:
					db.Get(op.Key)
				case workload.OpUpdate:
					err = db.Update(op.Key, op.Value)
				case workload.OpDelete:
					err = db.Delete(op.Key)
				}
				if err != nil {
					log.Fatalf("%s: %v", mix.Name, err)
				}
			}
			d := time.Since(start)
			if err := db.Check(); err != nil {
				log.Fatalf("fsck after %s: %v", mix.Name, err)
			}
			fmt.Printf("  PM %-8s %8.3f us/op  %8.0f ops/s\n",
				lat.name, float64(d.Nanoseconds())/float64(len(ops))/1000,
				float64(len(ops))/d.Seconds())
			db.Close()
		}
	}
}
