// Quickstart: the smallest useful tour of the public HART API — create a
// store, write, read, update, range-scan, delete, and inspect stats.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	hart "github.com/casl-sdsu/hart"
)

func main() {
	db, err := hart.New(hart.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Insert a handful of records (Algorithm 1). Keys are at most 24
	// bytes, values at most 16 bytes (the paper's two value classes).
	fruit := map[string]string{
		"apple": "red", "apricot": "orange", "banana": "yellow",
		"blueberry": "blue", "cherry": "dark-red", "fig": "purple",
	}
	for k, v := range fruit {
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("stored %d records across %d ARTs\n", db.Len(), db.NumARTs())

	// Point lookup (Algorithm 4).
	if v, ok := db.Get([]byte("cherry")); ok {
		fmt.Printf("cherry is %s\n", v)
	}

	// Out-of-place update under the persistent update log (Algorithm 3).
	if err := db.Update([]byte("apple"), []byte("green")); err != nil {
		log.Fatal(err)
	}
	v, _ := db.Get([]byte("apple"))
	fmt.Printf("apple is now %s\n", v)

	// Ordered range scan over [a, b): spans the "ap" and "ba" ARTs.
	fmt.Println("fruit in [a, c):")
	db.Scan([]byte("a"), []byte("c"), func(k, v []byte) bool {
		fmt.Printf("  %-10s %s\n", k, v)
		return true
	})

	// Deletion (Algorithm 5) releases the leaf and value objects; their
	// chunk space is recycled once empty (Algorithm 6).
	if err := db.Delete([]byte("fig")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after delete: %d records\n", db.Len())

	// The index can audit itself: no lost records, no persistent leaks.
	if err := db.Check(); err != nil {
		log.Fatalf("consistency check failed: %v", err)
	}
	st := db.Stats()
	fmt.Printf("PM: %.1f KB reserved, %d persists; DRAM: %.1f KB\n",
		float64(st.Size.PMBytes)/1024, st.Arena.Persists, float64(st.Size.DRAMBytes)/1024)
}
