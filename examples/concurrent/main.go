// Concurrent scaling: reproduces the spirit of the paper's Fig. 10d at
// example scale — HART's per-ART reader/writer locks let operations on
// distinct ARTs proceed in parallel, so throughput grows with threads
// until the hash-key space (or the machine) saturates.
//
//	go run ./examples/concurrent [-records 200000]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"sync"
	"time"

	hart "github.com/casl-sdsu/hart"
	"github.com/casl-sdsu/hart/internal/workload"
)

func main() {
	records := flag.Int("records", 200000, "records per run")
	flag.Parse()

	keys := workload.Random(*records, 9)
	val := []byte("00000000")
	threadCounts := []int{1, 2, 4, 8, 16}
	fmt.Printf("GOMAXPROCS = %d\n\n", runtime.GOMAXPROCS(0))
	fmt.Printf("%-8s %12s %12s %12s\n", "threads", "insert MOPS", "search MOPS", "speedup")

	var base float64
	for _, threads := range threadCounts {
		// Insert phase: each worker owns a disjoint slice of the keys;
		// most land in different ARTs, so writers rarely contend.
		db, err := hart.New(hart.Options{ArenaSize: int64(*records)*256 + (32 << 20)})
		if err != nil {
			log.Fatal(err)
		}
		insMOPS := run(threads, keys, func(k []byte) {
			if err := db.Put(k, val); err != nil {
				log.Fatal(err)
			}
		})
		// Search phase: readers share each ART's lock.
		searchMOPS := run(threads, keys, func(k []byte) {
			if _, ok := db.Get(k); !ok {
				log.Fatalf("lost key %q", k)
			}
		})
		if err := db.Check(); err != nil {
			log.Fatal(err)
		}
		db.Close()
		if threads == 1 {
			base = insMOPS
		}
		fmt.Printf("%-8d %12.3f %12.3f %11.2fx\n", threads, insMOPS, searchMOPS, insMOPS/base)
	}
	fmt.Println("\nWrites to the same ART serialise; writes to different ARTs do not —")
	fmt.Println("the maximal write concurrency equals the number of ARTs (paper §III.A.3).")
}

// run fans keys out over n workers and returns millions of ops/second.
func run(n int, keys [][]byte, op func(k []byte)) float64 {
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(keys); i += n {
				op(keys[i])
			}
		}(w)
	}
	wg.Wait()
	return float64(len(keys)) / time.Since(start).Seconds() / 1e6
}
